// Run driver: executes one routing instance (mesh + workload + algorithm)
// and collects the result metrics used by tests and benchmarks.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

class TrafficSource;

/// How a run's engine actually stepped. Sharding can be requested but not
/// honoured: a run carrying an interceptor falls back to the sequential
/// engine (phase (b) is inherently sequential), reported as
/// SequentialFallback.
enum class EngineMode {
  Sequential,
  Sharded,
  SequentialFallback,
};

/// Canonical wire names ("sequential", "sharded", "sequential-fallback"),
/// used by the scenario JSON records and the fallback notice.
const char* to_string(EngineMode mode);
/// Inverse of to_string; nullopt for unknown names.
std::optional<EngineMode> parse_engine_mode(std::string_view name);

/// Opt-in run observability. With `series` or `profile` set the runner
/// attaches a TelemetryCollector / enables phase profiling itself — callers
/// never construct observers. Setting `export_dir` additionally writes the
/// meshroute-telemetry/1 JSONL + CSV artefacts there.
struct TelemetrySpec {
  bool series = false;   ///< collect time series + heatmaps
  bool profile = false;  ///< wall-clock the five step phases
  Step sample_every = 16;
  std::size_t series_capacity = 4096;
  std::string export_dir;  ///< empty = collect only, no files
  std::string slug;        ///< export file slug; empty = algorithm name

  bool enabled() const { return series || profile || !export_dir.empty(); }
};

struct RunSpec {
  std::int32_t width = 0;   ///< router columns
  std::int32_t height = 0;  ///< router rows
  /// Registry topology name ("mesh", "torus", "cmesh-4", ...; see
  /// src/topo/registry.hpp). Empty means "mesh". width/height always
  /// describe the router grid.
  std::string topology;
  int queue_capacity = 1;  ///< k
  std::string algorithm;   ///< registry name
  Step max_steps = 0;      ///< 0 = auto (generous bound from mesh size)
  Step stall_limit = kDefaultStallLimit;
  TelemetrySpec telemetry;

  /// Canonical topology selection: `topology` when set, else "mesh". The
  /// only resolution point; run_workload builds the network from this name
  /// alone.
  std::string resolved_topology() const {
    return topology.empty() ? "mesh" : topology;
  }

  /// Sharded stepping mode (Engine::Config::shards / ::threads; DESIGN.md
  /// §9). Results are bit-identical to the sequential engine for any
  /// combination. A run with an interceptor hook falls back to
  /// shards = 1 (phase (b) is inherently sequential).
  int engine_shards = 1;
  int engine_threads = 1;

  /// Open-loop extension (used when RunHooks::traffic is set): the source
  /// injects for steps 1..traffic_steps through a TrafficPump with a
  /// traffic_ahead generation window, then the run drains. The engine runs
  /// with the open-loop stall policy so deadlocks trip the stall limit
  /// despite the pump's pending window.
  Step traffic_steps = 0;
  Step traffic_ahead = 32;

  /// Timed link/node fault schedule (sim/fault.hpp) installed on the
  /// engine before prepare()/restore(); empty = no faults. Validated
  /// against the resolved topology (set_fault_schedule throws on a
  /// schedule naming nodes or links the network does not have).
  FaultSchedule faults;

  /// Attach the online GreedyAdversary (check/adversary.hpp) as the run's
  /// interceptor. Forces the sequential engine like any interceptor;
  /// ignored when RunHooks::interceptor is already set (an explicit hook
  /// wins).
  bool adversary = false;

  /// Durable-run store (sim/snapshot.hpp). When enabled, run_workload
  /// writes a snapshot every `checkpoint.every` steps and the finished
  /// result as <key>.done.json; started against an existing store it
  /// resumes — a done record short-circuits, a snapshot restores the
  /// engine (and, for open-loop runs, the traffic source and pump) and
  /// continues bit-identically. Telemetry series on a mid-run resume cover
  /// only the post-restore window.
  CheckpointSpec checkpoint;
};

/// Optional extension points a scenario can attach to a run: an adversary
/// interceptor (§3 step (b) hook) and extra observers/checkers.
///
/// Ownership/const contract: every pointer is NON-OWNING and must outlive
/// the run_workload call. The hooks struct itself is read-only to the
/// runner (passed by const reference and never mutated), but the pointed-to
/// objects are live collaborators the engine calls back into — observers
/// accumulate, the interceptor exchanges, the traffic source advances — so
/// the pointees are deliberately non-const.
struct RunHooks {
  StepInterceptor* interceptor = nullptr;
  std::vector<Observer*> observers;
  std::vector<StepObserver*> step_observers;
  /// Open-loop traffic source pumped on top of the (possibly empty) batch
  /// workload; see RunSpec::traffic_steps.
  TrafficSource* traffic = nullptr;
};

struct RunResult {
  Step steps = 0;              ///< last executed step
  bool all_delivered = false;
  bool stalled = false;
  std::size_t packets = 0;
  std::size_t delivered = 0;
  int max_queue = 0;           ///< peak single-queue occupancy
  std::int64_t total_moves = 0;
  LatencySummary latency;
  /// Filled when RunSpec::telemetry asked for profiling.
  std::optional<PhaseProfile> phase_profile;
  /// JSONL path when RunSpec::telemetry exported artefacts, else empty.
  std::string telemetry_path;
  /// How the engine actually stepped (see EngineMode).
  EngineMode engine_mode = EngineMode::Sequential;
};

/// Runs the workload to completion (or to max_steps / stall), with
/// optional adversary/observer hooks attached to the engine.
RunResult run_workload(const RunSpec& spec, const Workload& workload,
                       const RunHooks& hooks = {});

/// Convenience: default max step budget for an n×m mesh with queue size k —
/// comfortably above the Theorem 15 upper bound.
Step default_step_budget(std::int32_t width, std::int32_t height, int k);

}  // namespace mr
