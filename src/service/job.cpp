#include "service/job.hpp"

#include <memory>

#include "topo/registry.hpp"
#include "traffic/source.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

bool get_int(const json::Value& obj, const char* key, std::int64_t* out) {
  const json::Value* v = obj.find(key);
  if (!v) return false;
  if (!v->is_number()) return false;
  *out = static_cast<std::int64_t>(v->number);
  return true;
}

}  // namespace

bool parse_job_spec(const json::Value& job, JobSpec* out, std::string* error) {
  const auto fail = [error](const std::string& what) {
    if (error) *error = "job: " + what;
    return false;
  };
  if (!job.is_object()) return fail("not an object");

  JobSpec spec;
  const json::Value* algorithm = job.find("algorithm");
  if (!algorithm || !algorithm->is_string() || algorithm->string.empty())
    return fail("missing \"algorithm\"");
  spec.run.algorithm = algorithm->string;

  std::int64_t width = 0, height = 0;
  if (!get_int(job, "width", &width) || !get_int(job, "height", &height) ||
      width < 1 || height < 1)
    return fail("missing or non-positive \"width\"/\"height\"");
  spec.run.width = static_cast<std::int32_t>(width);
  spec.run.height = static_cast<std::int32_t>(height);

  if (const json::Value* topo = job.find("topology")) {
    if (!topo->is_string()) return fail("\"topology\" must be a string");
    if (!known_topology(topo->string))
      return fail("unknown topology \"" + topo->string + "\"");
    spec.run.topology = topo->string;
  }

  std::int64_t v = 0;
  if (get_int(job, "k", &v)) {
    if (v < 1) return fail("\"k\" must be >= 1");
    spec.run.queue_capacity = static_cast<int>(v);
  }
  if (get_int(job, "max_steps", &v)) {
    if (v < 0) return fail("\"max_steps\" must be >= 0");
    spec.run.max_steps = v;
  }
  if (get_int(job, "stall_limit", &v)) {
    if (v < 1) return fail("\"stall_limit\" must be >= 1");
    spec.run.stall_limit = v;
  }
  if (get_int(job, "shards", &v)) {
    if (v < 1) return fail("\"shards\" must be >= 1");
    spec.run.engine_shards = static_cast<int>(v);
  }
  if (get_int(job, "threads", &v)) {
    if (v < 1) return fail("\"threads\" must be >= 1");
    spec.run.engine_threads = static_cast<int>(v);
  }
  if (get_int(job, "sample_every", &v)) {
    if (v < 1) return fail("\"sample_every\" must be >= 1");
    spec.run.telemetry.sample_every = v;
  }
  if (get_int(job, "seed", &v)) spec.workload_seed = static_cast<std::uint64_t>(v);

  if (const json::Value* slug = job.find("slug")) {
    if (!slug->is_string()) return fail("\"slug\" must be a string");
    spec.slug = slug->string;
  }

  if (const json::Value* traffic = job.find("traffic")) {
    if (!traffic->is_object()) return fail("\"traffic\" must be an object");
    spec.open_loop = true;
    if (const json::Value* pattern = traffic->find("pattern")) {
      if (!pattern->is_string() ||
          !parse_traffic_pattern(pattern->string, &spec.traffic.pattern))
        return fail("unknown traffic pattern");
    }
    if (const json::Value* rate = traffic->find("rate")) {
      if (!rate->is_number() || rate->number < 0 || rate->number > 1)
        return fail("\"traffic.rate\" must be in [0, 1]");
      spec.traffic.rate = rate->number;
    }
    if (get_int(*traffic, "seed", &v))
      spec.traffic.seed = static_cast<std::uint64_t>(v);
    if (!get_int(*traffic, "steps", &v) || v < 1)
      return fail("\"traffic.steps\" must be >= 1");
    spec.run.traffic_steps = v;
  }

  if (const json::Value* ckpt = job.find("checkpoint")) {
    if (!ckpt->is_object()) return fail("\"checkpoint\" must be an object");
    const json::Value* dir = ckpt->find("dir");
    const json::Value* key = ckpt->find("key");
    if (!dir || !dir->is_string() || !key || !key->is_string() ||
        dir->string.empty() || key->string.empty())
      return fail("\"checkpoint\" needs non-empty \"dir\" and \"key\"");
    spec.run.checkpoint.dir = dir->string;
    spec.run.checkpoint.key = key->string;
    if (get_int(*ckpt, "every", &v)) {
      if (v < 1) return fail("\"checkpoint.every\" must be >= 1");
      spec.run.checkpoint.every = v;
    }
  }

  *out = std::move(spec);
  return true;
}

RunResult execute_job(const JobSpec& spec, const std::string& work_dir) {
  RunSpec run = spec.run;
  run.telemetry.series = true;
  run.telemetry.export_dir = work_dir;
  run.telemetry.slug = spec.slug;

  if (spec.open_loop) {
    const std::unique_ptr<Topology> topo =
        make_topology(run.resolved_topology(), run.width, run.height);
    BernoulliSource source(*topo, spec.traffic);
    RunHooks hooks;
    hooks.traffic = &source;
    return run_workload(run, {}, hooks);
  }

  const std::unique_ptr<Topology> topo =
      make_topology(run.resolved_topology(), run.width, run.height);
  const Workload workload = random_permutation(*topo, spec.workload_seed);
  return run_workload(run, workload);
}

}  // namespace mr
