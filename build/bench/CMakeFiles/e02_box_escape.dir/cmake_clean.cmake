file(REMOVE_RECURSE
  "CMakeFiles/e02_box_escape.dir/e02_box_escape.cpp.o"
  "CMakeFiles/e02_box_escape.dir/e02_box_escape.cpp.o.d"
  "e02_box_escape"
  "e02_box_escape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e02_box_escape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
