#include "routing/adaptive.hpp"

namespace mr {

namespace {

constexpr DirMask kHorizontal = dir_bit(Dir::East) | dir_bit(Dir::West);
constexpr DirMask kVertical = dir_bit(Dir::North) | dir_bit(Dir::South);

/// First direction in (E,W,N,S) order present in `m`, restricted to `axis`.
bool first_dir_on_axis(DirMask m, DirMask axis, Dir& out) {
  for (Dir d : {Dir::East, Dir::West, Dir::North, Dir::South}) {
    if (mask_has(axis, d) && mask_has(m, d)) {
      out = d;
      return true;
    }
  }
  return false;
}

/// Conservative accept-while-space inqueue, rotating starting inlink.
void rotating_accept(std::uint64_t rotation, int free,
                     std::span<const DxOffer> offers, InPlan& plan) {
  const int start = static_cast<int>(rotation % kNumDirs);
  for (int r = 0; r < kNumDirs && free > 0; ++r) {
    const Dir want = static_cast<Dir>((start + r) % kNumDirs);
    for (std::size_t i = 0; i < offers.size(); ++i) {
      if (offers[i].travel_dir == want && !plan.accept[i]) {
        plan.accept[i] = true;
        --free;
        break;
      }
    }
  }
}

}  // namespace

void AdaptiveAlternateRouter::dx_init(NodeCtx&,
                                      std::span<PacketDxView> resident) {
  for (PacketDxView& v : resident)
    v.state = (v.profitable & kHorizontal) != 0 ? 0 : kAxisBit;
}

void AdaptiveAlternateRouter::dx_plan_out(
    NodeCtx&, std::span<const PacketDxView> resident, OutPlan& plan) {
  for (const PacketDxView& v : resident) {
    const DirMask preferred_axis = (v.state & kAxisBit) ? kVertical
                                                        : kHorizontal;
    Dir d;
    // Preferred axis first; if the preferred outlink is taken or the axis
    // is unprofitable, adapt to the other axis.
    if (first_dir_on_axis(v.profitable, preferred_axis, d) &&
        plan.scheduled(d) == kInvalidPacket) {
      plan.schedule(d, v.id);
      continue;
    }
    if (first_dir_on_axis(v.profitable, static_cast<DirMask>(~preferred_axis),
                          d) &&
        plan.scheduled(d) == kInvalidPacket) {
      plan.schedule(d, v.id);
    }
  }
}

void AdaptiveAlternateRouter::dx_plan_in(NodeCtx& ctx,
                                         std::span<const PacketDxView> resident,
                                         std::span<const DxOffer> offers,
                                         InPlan& plan) {
  rotating_accept(ctx.state, ctx.capacity - static_cast<int>(resident.size()),
                  offers, plan);
}

void AdaptiveAlternateRouter::dx_update(NodeCtx& ctx,
                                        std::span<PacketDxView> resident) {
  // A packet that did not move this step (it arrived earlier and is still
  // here) was blocked: switch its preferred axis, provided both axes are
  // still profitable. Newly arrived packets keep their preference.
  for (PacketDxView& v : resident) {
    if (v.arrived_at == ctx.step) continue;
    const bool h = (v.profitable & kHorizontal) != 0;
    const bool vert = (v.profitable & kVertical) != 0;
    if (h && vert) {
      v.state ^= kAxisBit;
    } else if (h) {
      v.state &= ~kAxisBit;
    } else if (vert) {
      v.state |= kAxisBit;
    }
  }
  ctx.state = (ctx.state + 1) % kNumDirs;
}

void GreedyMatchRouter::dx_plan_out(NodeCtx& ctx,
                                    std::span<const PacketDxView> resident,
                                    OutPlan& plan) {
  // FIFO over packets; each takes its first free profitable outlink, with
  // the direction preference rotating per step so no axis is starved.
  const int start = static_cast<int>(ctx.state % kNumDirs);
  for (const PacketDxView& v : resident) {
    for (int r = 0; r < kNumDirs; ++r) {
      const Dir d = static_cast<Dir>((start + r) % kNumDirs);
      if (mask_has(v.profitable, d) &&
          plan.scheduled(d) == kInvalidPacket) {
        plan.schedule(d, v.id);
        break;
      }
    }
  }
}

void GreedyMatchRouter::dx_plan_in(NodeCtx& ctx,
                                   std::span<const PacketDxView> resident,
                                   std::span<const DxOffer> offers,
                                   InPlan& plan) {
  rotating_accept(ctx.state + 1, ctx.capacity -
                                     static_cast<int>(resident.size()),
                  offers, plan);
}

void GreedyMatchRouter::dx_update(NodeCtx& ctx, std::span<PacketDxView>) {
  ctx.state = (ctx.state + 1) % kNumDirs;
}

}  // namespace mr
