# Empty dependencies file for fastroute_extra_test.
# This may be replaced when dependencies are built.
