#include "telemetry/export.hpp"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/table.hpp"
#include "harness/csv_export.hpp"
#include "core/json_min.hpp"
#include "telemetry/phase_profile.hpp"

namespace mr {

namespace {

std::string sanitize_slug(const std::string& s) {
  std::string out;
  for (char ch : s) {
    const char lower =
        static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    out += (std::isalnum(static_cast<unsigned char>(lower)) || lower == '-' ||
            lower == '_')
               ? lower
               : '_';
  }
  return out.empty() ? std::string("run") : out;
}

const char* layout_name(QueueLayout layout) {
  return layout == QueueLayout::PerInlink ? "per-inlink" : "central";
}

Table series_table(const TelemetryCollector& collector) {
  Table table({"step", "span", "moves", "deliveries", "injections",
               "stall_run", "moves_n", "moves_e", "moves_s", "moves_w",
               "fault_blocked", "fault_deferred"});
  for (const TelemetrySeriesRow& row : collector.series()) {
    table.row()
        .add(row.step)
        .add(row.span)
        .add(row.moves)
        .add(row.deliveries)
        .add(row.injections)
        .add(row.stall_run)
        .add(row.moves_by_dir[dir_index(Dir::North)])
        .add(row.moves_by_dir[dir_index(Dir::East)])
        .add(row.moves_by_dir[dir_index(Dir::South)])
        .add(row.moves_by_dir[dir_index(Dir::West)])
        .add(row.fault_blocked)
        .add(row.fault_deferred);
  }
  return table;
}

Table heatmap_table(const TelemetryCollector& collector,
                    const TelemetryRunInfo& info) {
  Table table({"node", "col", "row", "samples", "mean_occupancy",
               "max_occupancy"});
  const std::int64_t samples = collector.heat_samples();
  const auto& heat = collector.node_heat();
  for (std::size_t u = 0; u < heat.size(); ++u) {
    const TelemetryNodeHeat& h = heat[u];
    if (h.sum == 0 && h.max == 0) continue;
    const auto col = static_cast<std::int64_t>(u) %
                     (info.width > 0 ? info.width : 1);
    const auto row = static_cast<std::int64_t>(u) /
                     (info.width > 0 ? info.width : 1);
    table.row()
        .add(static_cast<std::int64_t>(u))
        .add(col)
        .add(row)
        .add(samples)
        .add(samples > 0 ? static_cast<double>(h.sum) /
                               static_cast<double>(samples)
                         : 0.0,
             4)
        .add(h.max);
  }
  return table;
}

}  // namespace

std::string telemetry_to_jsonl(const TelemetryCollector& collector,
                               const TelemetryRunInfo& info,
                               const PhaseProfile* profile) {
  std::ostringstream os;
  const TelemetryTotals& totals = collector.totals();

  os << "{\"schema\": \"" << kTelemetryJsonSchema
     << "\", \"kind\": \"header\", \"run\": \"" << json::escape(info.run)
     << "\", \"algorithm\": \"" << json::escape(info.algorithm)
     << "\", \"width\": " << info.width << ", \"height\": " << info.height
     << ", \"torus\": " << (info.torus ? "true" : "false")
     << ", \"queue_capacity\": " << info.queue_capacity
     << ", \"layout\": \"" << layout_name(info.layout)
     << "\", \"sample_every\": " << collector.options().sample_every
     << ", \"series_stride\": " << collector.series_stride() << "}\n";

  for (const TelemetrySeriesRow& row : collector.series()) {
    os << "{\"kind\": \"series\", \"step\": " << row.step
       << ", \"span\": " << row.span << ", \"moves\": " << row.moves
       << ", \"deliveries\": " << row.deliveries
       << ", \"injections\": " << row.injections
       << ", \"stall_run\": " << row.stall_run << ", \"moves_by_dir\": ["
       << row.moves_by_dir[0] << ", " << row.moves_by_dir[1] << ", "
       << row.moves_by_dir[2] << ", " << row.moves_by_dir[3]
       << "], \"fault_blocked\": " << row.fault_blocked
       << ", \"fault_deferred\": " << row.fault_deferred << "}\n";
  }

  const std::int64_t samples = collector.heat_samples();
  const auto& heat = collector.node_heat();
  for (std::size_t u = 0; u < heat.size(); ++u) {
    const TelemetryNodeHeat& h = heat[u];
    if (h.sum == 0 && h.max == 0) continue;
    os << "{\"kind\": \"heat\", \"node\": " << u
       << ", \"samples\": " << samples << ", \"sum\": " << h.sum
       << ", \"max\": " << h.max;
    if (collector.per_inlink()) {
      os << ", \"inlink_sum\": [" << h.inlink_sum[0] << ", "
         << h.inlink_sum[1] << ", " << h.inlink_sum[2] << ", "
         << h.inlink_sum[3] << "], \"inlink_max\": [" << h.inlink_max[0]
         << ", " << h.inlink_max[1] << ", " << h.inlink_max[2] << ", "
         << h.inlink_max[3] << "]";
    }
    os << "}\n";
  }

  if (profile != nullptr)
    os << "{\"kind\": \"phases\", " << phase_profile_json_fields(*profile)
       << "}\n";

  os << "{\"kind\": \"summary\", \"steps\": " << info.steps
     << ", \"moves\": " << totals.moves
     << ", \"deliveries\": " << totals.deliveries
     << ", \"injections\": " << totals.injections
     << ", \"exchanges\": " << totals.exchanges
     << ", \"max_stall_run\": " << totals.max_stall_run
     << ", \"packets\": " << info.packets
     << ", \"delivered\": " << info.delivered << ", \"stalled\": "
     << (info.stalled ? "true" : "false") << ", \"moves_by_dir\": ["
     << totals.moves_by_dir[0] << ", " << totals.moves_by_dir[1] << ", "
     << totals.moves_by_dir[2] << ", " << totals.moves_by_dir[3]
     << "], \"fault_blocked\": " << totals.fault_blocked
     << ", \"fault_deferred\": " << totals.fault_deferred << "}\n";
  return os.str();
}

std::string write_telemetry(const TelemetryCollector& collector,
                            const TelemetryRunInfo& info,
                            const PhaseProfile* profile,
                            const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string slug = sanitize_slug(info.run);
  const std::string path = dir + "/" + slug + ".jsonl";
  {
    std::ofstream out(path);
    if (!out) return {};
    out << telemetry_to_jsonl(collector, info, profile);
    if (!out.good()) return {};
  }
  if (!write_csv(series_table(collector), dir + "/" + slug + "_series.csv"))
    return {};
  if (!write_csv(heatmap_table(collector, info),
                 dir + "/" + slug + "_heatmap.csv"))
    return {};
  return path;
}

namespace {

bool require_numbers(const json::Value& obj,
                     std::initializer_list<const char*> keys,
                     const std::string& where, std::string* error) {
  for (const char* key : keys) {
    const json::Value* v = obj.find(key);
    if (v == nullptr || !v->is_number() || v->number < 0) {
      if (error != nullptr)
        *error = where + ": missing or negative \"" + key + "\"";
      return false;
    }
  }
  return true;
}

}  // namespace

bool validate_telemetry_jsonl(const std::string& path, std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = path + ": " + msg;
    return false;
  };
  std::ifstream in(path);
  if (!in.good()) return fail("cannot read");

  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  std::size_t summaries = 0;
  bool last_was_summary = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = "line " + std::to_string(lineno);
    std::string parse_error;
    const auto doc = json::parse(line, &parse_error);
    if (!doc) return fail(where + ": malformed JSON: " + parse_error);
    if (!doc->is_object()) return fail(where + ": not an object");
    const json::Value* kind = doc->find("kind");
    if (kind == nullptr || !kind->is_string())
      return fail(where + ": missing \"kind\"");
    if (!saw_header && kind->string != "header")
      return fail(where + ": record before header");
    last_was_summary = false;

    if (kind->string == "header") {
      if (saw_header || lineno != 1)
        return fail(where + ": header must be the single first record");
      saw_header = true;
      const json::Value* schema = doc->find("schema");
      if (schema == nullptr || !schema->is_string() ||
          schema->string != kTelemetryJsonSchema)
        return fail(where + ": missing or wrong \"schema\"");
      for (const char* key : {"run", "algorithm", "layout"}) {
        const json::Value* v = doc->find(key);
        if (v == nullptr || !v->is_string() || v->string.empty())
          return fail(where + ": missing or empty \"" + std::string(key) +
                      "\"");
      }
      if (!require_numbers(*doc,
                           {"width", "height", "queue_capacity",
                            "sample_every", "series_stride"},
                           where, error))
        return false;
    } else if (kind->string == "series") {
      if (!require_numbers(*doc,
                           {"step", "span", "moves", "deliveries",
                            "injections", "stall_run"},
                           where, error))
        return false;
      const json::Value* dirs = doc->find("moves_by_dir");
      if (dirs == nullptr || !dirs->is_array() ||
          dirs->array.size() != kNumDirs)
        return fail(where + ": \"moves_by_dir\" must be a 4-array");
    } else if (kind->string == "heat") {
      if (!require_numbers(*doc, {"node", "samples", "sum", "max"}, where,
                           error))
        return false;
    } else if (kind->string == "phases") {
      for (int i = 0; i < kNumPhases; ++i) {
        const json::Value* v =
            doc->find(phase_name(static_cast<StepPhase>(i)));
        if (v == nullptr || !v->is_number())
          return fail(where + ": missing phase \"" +
                      std::string(phase_name(static_cast<StepPhase>(i))) +
                      "\"");
      }
      if (!require_numbers(*doc, {"total", "steps"}, where, error))
        return false;
    } else if (kind->string == "summary") {
      ++summaries;
      last_was_summary = true;
      if (!require_numbers(*doc,
                           {"steps", "moves", "deliveries", "injections",
                            "max_stall_run", "packets", "delivered"},
                           where, error))
        return false;
      const json::Value* stalled = doc->find("stalled");
      if (stalled == nullptr || !stalled->is_bool())
        return fail(where + ": missing boolean \"stalled\"");
    } else {
      return fail(where + ": unknown kind \"" + kind->string + "\"");
    }
  }
  if (!saw_header) return fail("empty file (no header)");
  if (summaries != 1 || !last_was_summary)
    return fail("expected exactly one trailing summary record");
  return true;
}

}  // namespace mr
