// E14 — Lemma 19: exhaustive verification of the three-tilings cover
// property at every tile size the §6 algorithm uses, plus tile statistics.
#include "bench_util.hpp"
#include "fastroute/tiling.hpp"

int main() {
  using namespace mr;
  bench::header("E14", "three-tilings cover property", "Lemma 19, §6.1");

  const std::int32_t n = bench::scale() == bench::Scale::Small ? 27 : 81;
  Table table({"n", "tile T", "h = T/3", "pairs checked", "uncovered",
               "covered by tiling 0/1/2"});
  for (std::int32_t tile = n; tile >= 9; tile /= 3) {
    const std::int32_t h = tile / 3;
    std::int64_t pairs = 0, uncovered = 0;
    std::int64_t by[3] = {0, 0, 0};
    for (std::int32_t ac = 0; ac < n; ++ac)
      for (std::int32_t ar = 0; ar < n; ++ar)
        for (std::int32_t dc = -h; dc <= h; ++dc)
          for (std::int32_t dr = -h; dr <= h; ++dr) {
            const Coord a{ac, ar};
            const Coord b{ac + dc, ar + dr};
            if (b.col < 0 || b.col >= n || b.row < 0 || b.row >= n) continue;
            ++pairs;
            const int o = covering_tiling(n, tile, a, b);
            if (o < 0) {
              ++uncovered;
            } else {
              ++by[o];
            }
          }
    table.row()
        .add(std::int64_t(n))
        .add(std::int64_t(tile))
        .add(std::int64_t(h))
        .add(pairs)
        .add(uncovered)
        .add(std::to_string(by[0]) + "/" + std::to_string(by[1]) + "/" +
             std::to_string(by[2]));
  }
  bench::print(table);
  bench::note("Lemma 19 holds iff the 'uncovered' column is all zeros.");
  return 0;
}
