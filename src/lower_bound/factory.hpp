// Construction factories for the scenario layer: a registered scenario
// names an adversarial-instance family instead of wiring up a §3/§5
// construction by hand, and can re-target the constructed permutation
// onto another topology.
#pragma once

#include <string>

#include "core/types.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

/// A constructed adversarial instance packaged as a spec component: the
/// permutation plus the certificate the construction proves for it.
struct AdversarialInstance {
  bool valid = false;        ///< (n, k) admitted the construction
  Workload permutation;      ///< post-exchange constructed permutation
  Step certified_steps = 0;  ///< the ⌊l⌋·dn lower-bound certificate
  std::int64_t classes = 0;
  std::size_t exchanges = 0;
  /// The network the permutation addresses (registry name + router grid),
  /// ready to copy into a RunSpec. The torus family certifies its bound on
  /// a 2m×2m torus; the mesh families on the n×n mesh.
  std::string topology = "mesh";
  std::int32_t width = 0;
  std::int32_t height = 0;
};

/// Known family names, in stable order: "main" (Theorem 14, §3–§4, vs a DX
/// minimal adaptive router), "dim-order" (§5, vs a dimension-order
/// router), and "torus" (§5c: the main construction embedded in the m×m
/// quadrant of a 2m×2m torus — wrap links offer no shortcut to
/// quadrant-confined traffic, so the Ω(n²/k²) certificate transfers).
std::vector<std::string> adversarial_family_names();

/// Builds the family's construction for queue size k and runs it against
/// `algorithm` (which must belong to the family's router class) to extract
/// the adversarial permutation. For the mesh families n is the mesh side;
/// for "torus" n is the torus side (must be even; the construction runs on
/// the n/2 quadrant). Returns .valid = false when (n, k) is below the
/// construction's size floor. Throws InvariantViolation for unknown family
/// names.
AdversarialInstance adversarial_instance(const std::string& family,
                                         std::int32_t n, int k,
                                         const std::string& algorithm);

/// Re-targets a workload built on grid `from` onto the congruent top-left
/// corner of the (at least as large) grid `to`.
Workload retarget(const Workload& w, const Topology& from, const Topology& to);

}  // namespace mr
