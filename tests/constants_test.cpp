// §4.3 / §5 constant selection: exact-arithmetic constraints must hold for
// every (n, k) in the theorem regime, and the certified bounds must display
// the right asymptotics.
#include <gtest/gtest.h>

#include "lower_bound/constants.hpp"

namespace mr {
namespace {

class MainParams : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MainParams, ConstraintsHold) {
  const auto [n, k] = GetParam();
  const MainLbParams par = main_lb_params(n, k);
  ASSERT_TRUE(par.valid) << "n=" << n << " k=" << k;
  // cn, dn really are the floors of the chosen rationals.
  EXPECT_LE(2 * (k + 2) * par.cn, n);
  EXPECT_GT(2 * (k + 2) * (par.cn + 1), n);
  EXPECT_LE(5 * par.dn, 2 * n);
  // Constraint 1 (destination capacity), restated: p + ⌈l⌉ ≤ (1−c)n.
  const double l = double(par.cn) * par.cn / (2.0 * double(par.p));
  EXPECT_LE(double(par.p) + l, double(n - par.cn) + 1e-9);
  // Constraint 3: l ≤ c²n.
  EXPECT_LE(l, double(par.cn) * par.cn / double(n) + 1e-9);
  EXPECT_GE(par.classes, 1);
  EXPECT_EQ(par.certified_steps, par.classes * par.dn);
  // Packets fit in the 1-box one per node.
  EXPECT_LE(2 * par.p * par.classes,
            std::int64_t(par.cn) * par.cn);
}

// Combinations with ⌊l⌋ ≥ 1 (small n supports only small k: the 1-box must
// hold 2p packets).
INSTANTIATE_TEST_SUITE_P(
    Sweep, MainParams,
    ::testing::Values(std::tuple{60, 1}, std::tuple{90, 1},
                      std::tuple{120, 1}, std::tuple{216, 1},
                      std::tuple{300, 1}, std::tuple{432, 1},
                      std::tuple{600, 1}, std::tuple{120, 2},
                      std::tuple{216, 2}, std::tuple{432, 2},
                      std::tuple{600, 2}, std::tuple{216, 3},
                      std::tuple{432, 3}, std::tuple{600, 3}));

TEST(MainParams, TheoremRegimeFlag) {
  EXPECT_TRUE(main_lb_params(216, 1).theorem_regime);   // 216 = 24·9
  EXPECT_FALSE(main_lb_params(215, 1).theorem_regime);
  EXPECT_TRUE(main_lb_params(384, 2).theorem_regime);   // 24·16
  EXPECT_FALSE(main_lb_params(383, 2).theorem_regime);
}

TEST(MainParams, CertifiedBoundGrowsQuadratically) {
  // In the theorem regime at fixed k, doubling n should roughly quadruple
  // the certified bound (Ω(n²/k²)).
  const auto a = main_lb_params(216, 1);
  const auto b = main_lb_params(432, 1);
  ASSERT_TRUE(a.valid && b.valid);
  const double ratio =
      double(b.certified_steps) / double(a.certified_steps);
  EXPECT_GE(ratio, 3.0);
  EXPECT_LE(ratio, 6.0);
}

TEST(MainParams, CertifiedBoundShrinksWithK) {
  // At fixed n, the certified bound decreases in k (as ~1/k²).
  const auto k1 = main_lb_params(600, 1);
  const auto k3 = main_lb_params(600, 3);
  ASSERT_TRUE(k1.valid && k3.valid);
  EXPECT_GT(k1.certified_steps, k3.certified_steps);
}

TEST(MainParams, InvalidWhenTiny) {
  EXPECT_FALSE(main_lb_params(8, 1).valid);
}

class DimOrderParams : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(DimOrderParams, ConstraintsHold) {
  const auto [n, k] = GetParam();
  const DimOrderLbParams par = dim_order_lb_params(n, k);
  ASSERT_TRUE(par.valid);
  EXPECT_LE(par.p, std::int64_t(n) - par.cn);  // destination capacity
  EXPECT_LE(par.classes, std::int64_t(par.cn) + 1);
  EXPECT_GE(par.classes, 1);
  // Senders suffice: p·classes ≤ (n−cn)·cn.
  EXPECT_LE(par.p * par.classes, (std::int64_t(n) - par.cn) * par.cn);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimOrderParams,
    ::testing::Combine(::testing::Values(60, 120, 216, 432),
                       ::testing::Values(1, 2, 4)));

TEST(DimOrderParams, BoundIsOmegaN2OverK) {
  // ⌊l⌋dn should scale like n²/k: doubling n quadruples, doubling k
  // roughly halves.
  const auto a = dim_order_lb_params(216, 1);
  const auto b = dim_order_lb_params(432, 1);
  const auto c = dim_order_lb_params(216, 2);
  ASSERT_TRUE(a.valid && b.valid && c.valid);
  EXPECT_GE(double(b.certified_steps) / double(a.certified_steps), 3.0);
  EXPECT_GE(double(a.certified_steps) / double(c.certified_steps), 1.2);
}

class FarthestFirstParams
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FarthestFirstParams, ConstraintsHold) {
  const auto [n, k] = GetParam();
  const FarthestFirstLbParams par = farthest_first_lb_params(n, k);
  ASSERT_TRUE(par.valid);
  EXPECT_LE(par.p, std::int64_t(n) - par.cn);
  EXPECT_GE(par.classes, 1);
  // All class packets fit among the cn·n senders.
  EXPECT_LE(par.p * par.classes, std::int64_t(par.cn) * n);
  // p ≥ 3cn so the snake placement never puts class i ≥ 2 in its column.
  EXPECT_GE(par.p, 3 * std::int64_t(par.cn));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FarthestFirstParams,
    ::testing::Combine(::testing::Values(60, 120, 216, 432),
                       ::testing::Values(1, 2, 4)));

class HhParams
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HhParams, ConstraintsHold) {
  const auto [n, k, h] = GetParam();
  const HhLbParams par = hh_lb_params(n, k, h);
  ASSERT_TRUE(par.valid) << "n=" << n << " k=" << k << " h=" << h;
  // Constraint 3 ⟺ 2p ≥ hn.
  EXPECT_GE(2 * par.p, std::int64_t(h) * n);
  // Packets fit in the 1-box h per node.
  EXPECT_LE(2 * par.p * par.classes,
            std::int64_t(h) * par.cn * par.cn);
  EXPECT_GE(par.classes, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HhParams,
    ::testing::Values(std::tuple{216, 1, 1}, std::tuple{432, 1, 1},
                      std::tuple{120, 1, 2}, std::tuple{216, 1, 2},
                      std::tuple{216, 1, 4}, std::tuple{432, 2, 2},
                      std::tuple{216, 2, 4}));

TEST(HhParams, BoundGrowsWithH) {
  const auto h1 = hh_lb_params(432, 1, 1);
  const auto h4 = hh_lb_params(432, 1, 4);
  ASSERT_TRUE(h1.valid && h4.valid);
  EXPECT_GT(h4.certified_steps, h1.certified_steps);
}

}  // namespace
}  // namespace mr
