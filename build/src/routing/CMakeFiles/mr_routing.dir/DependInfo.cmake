
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/adaptive.cpp" "src/routing/CMakeFiles/mr_routing.dir/adaptive.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/adaptive.cpp.o.d"
  "/root/repo/src/routing/bounded_dimension_order.cpp" "src/routing/CMakeFiles/mr_routing.dir/bounded_dimension_order.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/bounded_dimension_order.cpp.o.d"
  "/root/repo/src/routing/dimension_order.cpp" "src/routing/CMakeFiles/mr_routing.dir/dimension_order.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/dimension_order.cpp.o.d"
  "/root/repo/src/routing/dx.cpp" "src/routing/CMakeFiles/mr_routing.dir/dx.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/dx.cpp.o.d"
  "/root/repo/src/routing/farthest_first.cpp" "src/routing/CMakeFiles/mr_routing.dir/farthest_first.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/farthest_first.cpp.o.d"
  "/root/repo/src/routing/registry.cpp" "src/routing/CMakeFiles/mr_routing.dir/registry.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/registry.cpp.o.d"
  "/root/repo/src/routing/stray.cpp" "src/routing/CMakeFiles/mr_routing.dir/stray.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/stray.cpp.o.d"
  "/root/repo/src/routing/west_first.cpp" "src/routing/CMakeFiles/mr_routing.dir/west_first.cpp.o" "gcc" "src/routing/CMakeFiles/mr_routing.dir/west_first.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
