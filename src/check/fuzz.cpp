#include "check/fuzz.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "check/oracles.hpp"
#include "check/reference_engine.hpp"
#include "core/rng.hpp"
#include "routing/registry.hpp"
#include "topo/registry.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"
#include "topo/mesh.hpp"
#include "traffic/burst.hpp"
#include "traffic/source.hpp"
#include "workload/lk.hpp"
#include "workload/patterns.hpp"

namespace mr {

namespace {

/// Stall limit for fuzz runs: small, so deadlocked configurations (a
/// legitimate outcome for some algorithm/k combinations) finish quickly.
/// Both engines get the same limit; stalling identically is not a failure.
constexpr Step kFuzzStallLimit = 64;

bool has_traffic(const FuzzCase& c) {
  return c.traffic != "none" && c.tsteps > 0;
}

/// The network a case routes on: the named registry topology ("" = mesh).
std::unique_ptr<Topology> fuzz_topology(const FuzzCase& c) {
  return make_topology(c.topo.empty() ? "mesh" : c.topo, c.n, c.n);
}

/// Expands the case's traffic stream into the explicit demand list both
/// engines receive. Deterministic in (traffic, rate, tseed, tsteps, n,
/// burst) — bursty streams go through the same make_traffic_source
/// factory the harness uses, so a burst= repro line replays bit for bit.
Workload traffic_demands(const FuzzCase& c) {
  if (!has_traffic(c)) return {};
  const std::unique_ptr<Topology> topo = fuzz_topology(c);
  TrafficSpec spec;
  MR_REQUIRE_MSG(parse_traffic_pattern(c.traffic, &spec.pattern),
                 "unknown traffic pattern '" << c.traffic << "'");
  spec.rate = c.rate;
  spec.seed = c.tseed;
  const std::unique_ptr<TrafficSource> source =
      make_traffic_source(*topo, spec, c.burst);
  return materialize_traffic(*source, 1, c.tsteps);
}

/// Expands the case's lk= workload (empty when the key is absent).
/// Deterministic in (lk, n, topo) — the spec string carries its own seed.
Workload lk_demands(const FuzzCase& c) {
  if (c.lk.empty()) return {};
  LkSpec spec;
  std::string err;
  MR_REQUIRE_MSG(parse_lk_spec(c.lk, &spec, &err), err);
  return make_lk_workload(*fuzz_topology(c), spec);
}

}  // namespace

bool supports_torus(const std::string& algorithm) {
  for (const AlgorithmInfo& info : algorithm_catalog()) {
    if (info.name != algorithm) continue;
    // The stray rectangle and the farthest-first distance order are not
    // defined across wrap links; everything else runs on the torus.
    return info.dx_minimal || info.name == "bounded-dimension-order" ||
           info.name == "emps";
  }
  return false;
}

std::string format_fuzz_case(const FuzzCase& c) {
  std::ostringstream os;
  os << "algo=" << c.algorithm << " n=" << c.n << " k=" << c.k
     << " budget=" << c.budget;
  if (!c.topo.empty()) os << " topo=" << c.topo;
  if (c.ckpt >= 0) os << " ckpt=" << c.ckpt;
  if (!c.lk.empty()) os << " lk=" << c.lk;
  if (has_traffic(c)) {
    os << " traffic=" << c.traffic << " rate=" << c.rate
       << " tseed=" << c.tseed << " tsteps=" << c.tsteps;
    if (!c.burst.stationary()) os << " burst=" << format_burst_spec(c.burst);
  }
  if (!c.faults.empty()) os << " fault=" << format_fault_schedule(c.faults);
  if (c.shards != 1) os << " shards=" << c.shards;
  if (c.threads != 1) os << " threads=" << c.threads;
  os << " demands=";
  for (std::size_t i = 0; i < c.demands.size(); ++i) {
    const Demand& d = c.demands[i];
    if (i > 0) os << ',';
    os << d.source << '-' << d.dest;
    if (d.injected_at != 0) os << '@' << d.injected_at;
  }
  return os.str();
}

bool parse_fuzz_case(const std::string& spec, FuzzCase* out,
                     std::string* error) {
  FuzzCase c;
  c.demands.clear();
  bool saw_algo = false, saw_demands = false, legacy_torus = false;
  std::istringstream is(spec);
  std::string token;
  while (is >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    char* end = nullptr;
    if (key == "algo") {
      c.algorithm = value;
      saw_algo = true;
    } else if (key == "n") {
      c.n = static_cast<std::int32_t>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "torus") {
      // Legacy shim from pre-registry spec lines; normalised into topo.
      legacy_torus = value == "1" || value == "true";
    } else if (key == "topo") {
      c.topo = value;
    } else if (key == "k") {
      c.k = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "budget") {
      c.budget = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "ckpt") {
      c.ckpt = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "lk") {
      LkSpec lk;
      std::string lerr;
      if (!parse_lk_spec(value, &lk, &lerr)) {
        if (error) *error = "malformed lk spec: " + lerr;
        return false;
      }
      c.lk = value;
    } else if (key == "traffic") {
      c.traffic = value;
    } else if (key == "rate") {
      c.rate = std::strtod(value.c_str(), &end);
    } else if (key == "tseed") {
      c.tseed = std::strtoull(value.c_str(), &end, 10);
    } else if (key == "tsteps") {
      c.tsteps = std::strtoll(value.c_str(), &end, 10);
    } else if (key == "burst") {
      std::string berr;
      if (!parse_burst_spec(value, &c.burst, &berr)) {
        if (error) *error = "malformed burst spec: " + berr;
        return false;
      }
    } else if (key == "fault") {
      std::string ferr;
      if (!parse_fault_schedule(value, &c.faults, &ferr)) {
        if (error) *error = "malformed fault schedule: " + ferr;
        return false;
      }
    } else if (key == "shards") {
      c.shards = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "threads") {
      c.threads = static_cast<int>(std::strtol(value.c_str(), &end, 10));
    } else if (key == "demands") {
      saw_demands = true;
      std::istringstream ds(value);
      std::string item;
      while (std::getline(ds, item, ',')) {
        if (item.empty()) continue;
        Demand d;
        char* p = nullptr;
        d.source =
            static_cast<NodeId>(std::strtol(item.c_str(), &p, 10));
        if (p == nullptr || *p != '-') {
          if (error) *error = "malformed demand '" + item + "'";
          return false;
        }
        d.dest = static_cast<NodeId>(std::strtol(p + 1, &p, 10));
        if (p != nullptr && *p == '@') {
          d.injected_at = std::strtoll(p + 1, &p, 10);
        }
        if (p == nullptr || *p != '\0') {
          if (error) *error = "malformed demand '" + item + "'";
          return false;
        }
        c.demands.push_back(d);
      }
    } else {
      if (error) *error = "unknown key '" + key + "'";
      return false;
    }
    if (end != nullptr && *end != '\0') {
      if (error) *error = "malformed value for '" + key + "'";
      return false;
    }
  }
  if (!saw_algo || !saw_demands) {
    if (error) *error = "spec needs at least algo= and demands=";
    return false;
  }
  if (legacy_torus && c.topo.empty()) c.topo = "torus";
  if (c.n < 2 || c.k < 1 || c.budget < 1) {
    if (error) *error = "n must be >= 2, k >= 1, budget >= 1";
    return false;
  }
  if (c.shards < 1 || c.threads < 1) {
    if (error) *error = "shards and threads must be >= 1";
    return false;
  }
  if (!c.topo.empty() && !known_topology(c.topo)) {
    if (error) *error = "unknown topology '" + c.topo + "'";
    return false;
  }
  if (!c.faults.empty()) {
    const std::string ferr =
        validate_fault_schedule(c.faults, *fuzz_topology(c));
    if (!ferr.empty()) {
      if (error) *error = ferr;
      return false;
    }
  }
  if (c.traffic != "none") {
    TrafficPattern pattern;
    if (!parse_traffic_pattern(c.traffic, &pattern)) {
      if (error) *error = "unknown traffic pattern '" + c.traffic + "'";
      return false;
    }
    if (c.rate < 0.0 || c.rate > 1.0 || c.tsteps < 0) {
      if (error) *error = "traffic needs rate in [0,1] and tsteps >= 0";
      return false;
    }
  }
  const NodeId nodes = c.n * c.n;
  for (const Demand& d : c.demands) {
    if (d.source < 0 || d.source >= nodes || d.dest < 0 || d.dest >= nodes ||
        d.injected_at < 0) {
      if (error) *error = "demand out of range for n=" + std::to_string(c.n);
      return false;
    }
  }
  *out = std::move(c);
  return true;
}

std::string run_fuzz_case(const FuzzCase& c) {
  std::ostringstream err;
  try {
    const std::unique_ptr<Topology> topo = fuzz_topology(c);
    auto algo_opt = make_algorithm(c.algorithm);
    auto algo_ref = make_algorithm(c.algorithm);

    Engine::Config config;
    config.queue_capacity = c.k;
    config.stall_limit = kFuzzStallLimit;
    config.shards = c.shards;
    config.threads = c.threads;
    Engine opt(*topo, config, [&] { return make_algorithm(c.algorithm); });
    ReferenceEngine ref(*topo, c.k, kFuzzStallLimit, *algo_ref);

    // Same fault schedule in both engines: the reroute-or-stall decisions
    // (dropped moves, deferred injections, availability-masked planning)
    // must be bit-identical, and both land in the step digest the hashers
    // compare below.
    if (!c.faults.empty()) {
      opt.set_fault_schedule(c.faults);
      ref.set_fault_schedule(c.faults);
    }

    for (const Demand& d : c.demands) {
      opt.add_packet(d.source, d.dest, d.injected_at);
      ref.add_packet(d.source, d.dest, d.injected_at);
    }
    for (const Demand& d : lk_demands(c)) {
      opt.add_packet(d.source, d.dest, d.injected_at);
      ref.add_packet(d.source, d.dest, d.injected_at);
    }
    for (const Demand& d : traffic_demands(c)) {
      opt.add_packet(d.source, d.dest, d.injected_at);
      ref.add_packet(d.source, d.dest, d.injected_at);
    }

    // Oracles watch the optimized engine; the queue-bound oracle also
    // watches the reference (its occupancy accessor is an independent
    // scan there, so the cross-check is trivially true but the bound
    // check is not).
    QueueBoundOracle queue_bound;
    LinkCapacityOracle link_capacity;
    ProfitableMoveOracle profitable(algo_opt->minimal(),
                                    algo_opt->max_stray());
    ExchangeConsistencyOracle exchange;
    TraceRecorder trace;
    opt.add_observer(&queue_bound);
    opt.add_observer(&link_capacity);
    opt.add_observer(&profitable);
    opt.add_observer(&exchange);
    opt.add_observer(&trace);
    QueueBoundOracle ref_queue_bound;
    ref.add_observer(&ref_queue_bound);

    DigestHasher opt_hash, ref_hash;
    opt.add_observer(&opt_hash);
    ref.add_observer(&ref_hash);

    opt.prepare();
    ref.prepare();
    if (opt.fingerprint() != ref.fingerprint()) {
      err << "fingerprint divergence after prepare()";
      return err.str();
    }
    if (opt_hash.hash() != ref_hash.hash()) {
      err << "digest divergence after prepare()";
      return err.str();
    }

    for (Step t = 0; t < c.budget; ++t) {
      // Mid-run snapshot round trip: serialize → parse → restore must be
      // the identity on the optimized engine, or the lock-step comparison
      // below diverges immediately.
      if (c.ckpt >= 0 && opt.step() == c.ckpt)
        opt.restore(parse_snapshot(serialize_snapshot(opt.snapshot())));
      const bool more_opt = opt.step_once();
      const bool more_ref = ref.step_once();
      if (more_opt != more_ref) {
        err << "drain divergence at step " << opt.step() << ": optimized="
            << more_opt << " reference=" << more_ref;
        return err.str();
      }
      if (!more_opt) break;
      if (opt.fingerprint() != ref.fingerprint()) {
        err << "fingerprint divergence at step " << opt.step();
        return err.str();
      }
      if (opt_hash.hash() != ref_hash.hash()) {
        err << "digest divergence at step " << opt.step();
        return err.str();
      }
      if (opt.stalled() != ref.stalled()) {
        err << "stall divergence at step " << opt.step();
        return err.str();
      }
      if (opt.stalled() || opt.all_delivered()) break;
    }

    if (opt.delivered_count() != ref.delivered_count() ||
        opt.total_moves() != ref.total_moves() ||
        opt.max_occupancy_seen() != ref.max_occupancy_seen() ||
        opt.exchange_count() != ref.exchange_count() ||
        opt.step() != ref.step()) {
      err << "final-counter divergence: delivered " << opt.delivered_count()
          << "/" << ref.delivered_count() << ", moves " << opt.total_moves()
          << "/" << ref.total_moves() << ", max-occupancy "
          << opt.max_occupancy_seen() << "/" << ref.max_occupancy_seen()
          << ", steps " << opt.step() << "/" << ref.step();
      return err.str();
    }

    // Offline pass: the recorded trace must replay cleanly too.
    const std::string trace_error =
        run_trace_oracles(trace.events(), *topo, opt.all_packets(), c.k,
                          algo_opt->queue_layout(),
                          c.faults.empty() ? nullptr : &c.faults);
    if (!trace_error.empty()) {
      err << "trace replay: " << trace_error;
      return err.str();
    }
  } catch (const InvariantViolation& e) {
    return std::string("invariant violation: ") + e.what();
  } catch (const std::exception& e) {
    return std::string("exception: ") + e.what();
  }
  return {};
}

FuzzCase shrink_fuzz_case(const FuzzCase& c, const FuzzRunner& failing) {
  const FuzzRunner runner =
      failing ? failing : FuzzRunner([](const FuzzCase& x) {
        return run_fuzz_case(x);
      });
  if (runner(c).empty()) return c;
  FuzzCase cur = c;
  // Flatten an lk= workload into explicit demands (the expansion is
  // deterministic — the spec string carries its own seed — so the
  // flattened case fails identically); ddmin then shrinks the whole list.
  if (!cur.lk.empty()) {
    FuzzCase flat = cur;
    const Workload expansion = lk_demands(flat);
    flat.demands.insert(flat.demands.end(), expansion.begin(),
                        expansion.end());
    flat.lk.clear();
    if (!runner(flat).empty()) cur = std::move(flat);
  }
  // Flatten an active traffic stream into explicit demands (the expansion
  // is deterministic — bursty streams included, via make_traffic_source —
  // so the flattened case fails identically); ddmin then shrinks the
  // whole list.
  if (has_traffic(cur)) {
    FuzzCase flat = cur;
    const Workload stream = traffic_demands(flat);
    flat.demands.insert(flat.demands.end(), stream.begin(), stream.end());
    flat.traffic = "none";
    flat.tsteps = 0;
    flat.burst = BurstSpec{};
    if (!runner(flat).empty()) cur = std::move(flat);
  }
  // ddmin over the demand list: drop chunks while the case still fails,
  // halving the chunk size when no chunk can be dropped.
  std::size_t attempts = 0;
  constexpr std::size_t kMaxAttempts = 2000;
  std::size_t chunk = std::max<std::size_t>(1, cur.demands.size() / 2);
  while (cur.demands.size() > 1 && attempts < kMaxAttempts) {
    bool reduced = false;
    for (std::size_t start = 0;
         start < cur.demands.size() && attempts < kMaxAttempts;
         start += chunk) {
      FuzzCase candidate = cur;
      const auto begin =
          candidate.demands.begin() + static_cast<std::ptrdiff_t>(start);
      const auto end =
          candidate.demands.begin() +
          static_cast<std::ptrdiff_t>(std::min(start + chunk,
                                               candidate.demands.size()));
      candidate.demands.erase(begin, end);
      ++attempts;
      if (candidate.demands.empty()) continue;
      if (!runner(candidate).empty()) {
        cur = std::move(candidate);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<std::size_t>(1, cur.demands.size() / 2));
    }
  }
  // Shrink the fault schedule: try dropping it wholesale (most failures
  // are not fault-dependent), then a drop-one-event pass iterated to a
  // fixed point — schedules are a handful of events, so full ddmin
  // machinery buys nothing here.
  if (!cur.faults.empty()) {
    FuzzCase bare = cur;
    bare.faults.events.clear();
    ++attempts;
    if (!runner(bare).empty()) {
      cur = std::move(bare);
    } else {
      bool dropped = true;
      while (dropped && cur.faults.events.size() > 1 &&
             attempts < kMaxAttempts) {
        dropped = false;
        for (std::size_t i = 0; i < cur.faults.events.size(); ++i) {
          FuzzCase candidate = cur;
          candidate.faults.events.erase(
              candidate.faults.events.begin() +
              static_cast<std::ptrdiff_t>(i));
          ++attempts;
          if (!runner(candidate).empty()) {
            cur = std::move(candidate);
            dropped = true;
            break;
          }
          if (attempts >= kMaxAttempts) break;
        }
      }
    }
  }
  return cur;
}

namespace {

FuzzCase sample_case(Rng& rng) {
  FuzzCase c;
  const std::vector<std::string> names = algorithm_names();
  c.algorithm = names[rng.next_below(names.size())];
  c.n = static_cast<std::int32_t>(4 + rng.next_below(7));  // 4..10
  if (supports_torus(c.algorithm) && rng.next_below(3) == 0) c.topo = "torus";
  // A quarter of the non-torus cases route on a concentrated mesh: same
  // router grid, but the traffic layer draws per terminal, so source==dest
  // demands and shared-router injection contention get differential
  // coverage too.
  if (c.topo.empty() && rng.next_below(4) == 0)
    c.topo = rng.next_below(2) == 0 ? "cmesh-2" : "cmesh-4";
  constexpr int kChoices[] = {1, 2, 4, 8};
  c.k = kChoices[rng.next_below(4)];
  c.budget = 4096;
  // A quarter of the cases exercise the snapshot round trip mid-run; early
  // steps are where queues fill and the waiting/due machinery is busiest.
  if (rng.next_below(4) == 0)
    c.ckpt = static_cast<Step>(1 + rng.next_below(16));
  // A third of the cases run the optimized engine sharded, differentially
  // checking the boundary-handoff protocol against the sequential
  // reference (shards beyond the mesh height clamp, so any draw is valid).
  if (rng.next_below(3) == 0) {
    constexpr int kShardChoices[] = {2, 3, 4, 8};
    c.shards = kShardChoices[rng.next_below(4)];
    constexpr int kThreadChoices[] = {1, 2, 4};
    c.threads = kThreadChoices[rng.next_below(3)];
  }
  // A quarter of the cases install a timed fault schedule: one or two
  // windows over interior elements (all four link directions exist there
  // on every registry topology), mostly transient so the run can drain
  // after the window, with an occasional permanent fault — a stall is a
  // legitimate outcome both engines must reach identically.
  if (rng.next_below(4) == 0) {
    const auto interior = [&] {
      return static_cast<std::int32_t>(1 + rng.next_below(
          static_cast<std::uint64_t>(c.n - 2)));
    };
    const int events = 1 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < events; ++i) {
      FaultEvent ev;
      ev.node = interior() * c.n + interior();
      if (rng.next_below(2) == 0) {
        ev.kind = FaultEvent::Kind::Node;
      } else {
        ev.kind = FaultEvent::Kind::Link;
        constexpr Dir kDirs[] = {Dir::North, Dir::East, Dir::South,
                                 Dir::West};
        ev.dir = kDirs[rng.next_below(4)];
      }
      ev.down_at = static_cast<Step>(1 + rng.next_below(8));
      ev.up_at = rng.next_below(8) == 0
                     ? kStepNever
                     : ev.down_at + static_cast<Step>(4 + rng.next_below(29));
      c.faults.events.push_back(ev);
    }
    // Concentrated topologies may reject a direction at a router the plain
    // interior heuristic assumed; a sampled schedule is best-effort, so an
    // invalid draw simply degrades to a fault-free case.
    if (!validate_fault_schedule(c.faults, *fuzz_topology(c)).empty())
      c.faults.events.clear();
  }

  const Mesh mesh = Mesh::square(c.n, c.topo == "torus");
  const std::uint64_t wseed = rng.next_u64() | 1;
  // A quarter of the cases carry an open-loop traffic stream instead of a
  // batch workload: pattern, rate and window sampled, stream expanded at
  // run time from tseed (so the spec line stays self-contained).
  if (rng.next_below(4) == 0) {
    const std::vector<TrafficPattern>& patterns = all_traffic_patterns();
    c.traffic =
        traffic_pattern_name(patterns[rng.next_below(patterns.size())]);
    constexpr double kRates[] = {0.05, 0.1, 0.2, 0.4};
    c.rate = kRates[rng.next_below(4)];
    c.tseed = wseed;
    c.tsteps = static_cast<Step>(8 + rng.next_below(33));  // 8..40
    // A third of the traffic cases modulate the stream with a burst
    // process (traffic/burst.hpp), so the time-varying sources get
    // differential coverage through the same factory the harness uses.
    if (rng.next_below(3) == 0) {
      switch (rng.next_below(3)) {
        case 0:
          c.burst.kind = "onoff";
          c.burst.on_steps = static_cast<Step>(2 + rng.next_below(7));
          c.burst.off_steps = static_cast<Step>(2 + rng.next_below(7));
          break;
        case 1: {
          c.burst.kind = "mmpp";
          constexpr double kP[] = {0.1, 0.2, 0.5};
          c.burst.p01 = kP[rng.next_below(3)];
          c.burst.p10 = kP[rng.next_below(3)];
          break;
        }
        default:
          c.burst.kind = "drift";
          c.burst.drift_period = static_cast<Step>(4 + rng.next_below(13));
          break;
      }
    }
    return c;
  }
  // A fifth of the batch cases draw an (l,k) workload through the lk=
  // spec key instead of an explicit pattern, so the spec-line expansion
  // path (and the clustered/worst-case degree profiles) fuzz too.
  if (rng.next_below(5) == 0) {
    LkSpec lk;
    constexpr const char* kVariants[] = {"uniform", "clustered",
                                         "worst-case"};
    lk.variant = kVariants[rng.next_below(3)];
    lk.l = static_cast<int>(1 + rng.next_below(3));
    lk.k = static_cast<int>(1 + rng.next_below(3));
    lk.seed = wseed;
    c.lk = format_lk_spec(lk);
    return c;
  }
  switch (rng.next_below(9)) {
    case 0: c.demands = random_permutation(mesh, wseed); break;
    case 1:
      c.demands = random_partial_permutation(mesh, 0.5, wseed);
      break;
    case 2: c.demands = transpose(mesh); break;
    case 3: c.demands = random_hh(mesh, 2, wseed); break;
    case 4: c.demands = random_hh(mesh, 3, wseed); break;
    case 5:
      c.demands = hotspot(mesh, mesh.num_nodes() - 1,
                          std::min<std::int32_t>(2 * c.n,
                                                 mesh.num_nodes() - 1));
      break;
    case 6: c.demands = corner_flood(mesh, (c.n + 1) / 2, (c.n + 1) / 2); break;
    case 7:
      c.demands = diagonal_shift(
          mesh, static_cast<std::int32_t>(1 + rng.next_below(
                    static_cast<std::uint64_t>(c.n - 1))));
      break;
    default:
      c.demands = row_to_column(
          mesh, static_cast<std::int32_t>(rng.next_below(
                    static_cast<std::uint64_t>(c.n))),
          static_cast<std::int32_t>(rng.next_below(
              static_cast<std::uint64_t>(c.n))));
      break;
  }
  // A third of the cases stagger injections so the waiting-injection and
  // dynamic-arrival paths diverge if either engine mishandles them.
  if (rng.next_below(3) == 0) {
    for (std::size_t i = 0; i < c.demands.size(); ++i)
      if (i % 4 == 0)
        c.demands[i].injected_at = static_cast<Step>(rng.next_below(6));
  }
  // A quarter get source==dest packets: delivered at injection, visible
  // only through the injected-deliveries digest path.
  if (rng.next_below(4) == 0) {
    for (int extra = 0; extra < 2; ++extra) {
      const NodeId u = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(mesh.num_nodes())));
      c.demands.push_back(Demand{u, u, static_cast<Step>(rng.next_below(3))});
    }
  }
  return c;
}

}  // namespace

FuzzReport run_fuzz(std::size_t num_cases, std::uint64_t seed,
                    std::ostream& log) {
  FuzzReport report;
  Rng rng(seed);
  for (std::size_t i = 0; i < num_cases; ++i) {
    const FuzzCase c = sample_case(rng);
    const std::string error = run_fuzz_case(c);
    ++report.cases_run;
    log << "fuzz[" << i << "] algo=" << c.algorithm << " n=" << c.n << " "
        << (!c.topo.empty() ? c.topo : "mesh") << " k=" << c.k
        << " demands=" << c.demands.size();
    if (c.ckpt >= 0) log << " ckpt=" << c.ckpt;
    if (!c.lk.empty()) log << " lk=" << c.lk;
    if (c.traffic != "none")
      log << " traffic=" << c.traffic << " rate=" << c.rate
          << " tsteps=" << c.tsteps;
    if (!c.burst.stationary()) log << " burst=" << format_burst_spec(c.burst);
    if (!c.faults.empty())
      log << " fault=" << format_fault_schedule(c.faults);
    if (c.shards != 1)
      log << " shards=" << c.shards << " threads=" << c.threads;
    if (error.empty()) {
      log << " ok\n";
      continue;
    }
    log << " FAIL: " << error << "\n";
    ++report.failures;
    report.first_error = error;
    const FuzzCase shrunk = shrink_fuzz_case(c);
    report.first_repro = format_fuzz_case(shrunk);
    log << "shrunk to " << shrunk.demands.size() << " demand(s): "
        << report.first_repro << "\n";
    break;
  }
  return report;
}

}  // namespace mr
