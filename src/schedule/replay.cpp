#include "schedule/replay.hpp"

#include <algorithm>

namespace mr {

void ScheduleFollower::dx_plan_out(NodeCtx& ctx,
                                   std::span<const PacketDxView> resident,
                                   OutPlan& plan) {
  for (const PacketDxView& view : resident) {
    const std::size_t i = static_cast<std::size_t>(view.id);
    MR_REQUIRE_MSG(i < schedule_->packets.size(),
                   "packet " << view.id << " has no timetable");
    const PacketSchedule& p = schedule_->packets[i];
    const auto it =
        std::lower_bound(p.depart.begin(), p.depart.end(), ctx.step);
    if (it == p.depart.end() || *it != ctx.step) continue;  // waiting
    const std::size_t h =
        static_cast<std::size_t>(it - p.depart.begin());
    MR_REQUIRE_MSG(p.path.nodes[h] == ctx.node,
                   "packet " << view.id << " is at node " << ctx.node
                             << " at step " << ctx.step
                             << " but its timetable places it at "
                             << p.path.nodes[h]);
    plan.schedule(p.path.dirs[h], view.id);
  }
}

void ScheduleFollower::dx_plan_in(NodeCtx& ctx,
                                  std::span<const PacketDxView> resident,
                                  std::span<const DxOffer> offers,
                                  InPlan& plan) {
  // A feasible schedule never exceeds required_queue_capacity(), and
  // replay_schedule sizes the engine to exactly that bound, so every
  // offer is accepted; the engine's §2 capacity check still audits the
  // claim after each transmit phase.
  (void)ctx;
  (void)resident;
  for (std::size_t i = 0; i < offers.size(); ++i) plan.accept[i] = true;
}

ReplayReport replay_schedule(const Topology& topo, const Schedule& s,
                             Step stall_slack) {
  ReplayReport report;
  report.queue_capacity = std::max(required_queue_capacity(s), 1);

  Engine::Config config;
  config.queue_capacity = report.queue_capacity;
  config.stall_limit = s.makespan + std::max<Step>(stall_slack, 1);

  auto shared = std::make_shared<const Schedule>(s);
  ScheduleFollower follower(shared);
  Engine engine(topo, config, follower);
  for (const PacketSchedule& p : s.packets)
    engine.add_packet(p.path.nodes.front(), p.path.nodes.back(), p.start());
  engine.prepare();
  report.steps = engine.run(std::max<Step>(s.makespan, 1));

  report.all_delivered = engine.all_delivered();
  report.total_moves = engine.total_moves();
  report.fingerprint = engine.fingerprint();
  report.on_time = report.all_delivered;
  for (std::size_t i = 0; i < s.packets.size() && report.on_time; ++i) {
    const PacketSchedule& p = s.packets[i];
    if (p.path.hops() == 0) continue;  // delivered at injection
    if (engine.packet(static_cast<PacketId>(i)).delivered_at != p.finish())
      report.on_time = false;
  }
  return report;
}

}  // namespace mr
