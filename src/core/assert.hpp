// Assertion utilities for the meshroute library.
//
// MR_REQUIRE is always-on (release included): it guards model invariants whose
// violation means the simulation no longer corresponds to the paper's model,
// so silently continuing would produce meaningless results. It throws
// mr::InvariantViolation, which tests can assert on.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mr {

/// Thrown when a model invariant is violated (queue overflow, non-minimal
/// move, exchange-rule precondition failure, ...).
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace detail

}  // namespace mr

#define MR_REQUIRE(cond)                                             \
  do {                                                               \
    if (!(cond))                                                     \
      ::mr::detail::require_failed(#cond, __FILE__, __LINE__, {});   \
  } while (0)

#define MR_REQUIRE_MSG(cond, msg)                                    \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream mr_require_os_;                             \
      mr_require_os_ << msg;                                         \
      ::mr::detail::require_failed(#cond, __FILE__, __LINE__,        \
                                   mr_require_os_.str());            \
    }                                                                \
  } while (0)
