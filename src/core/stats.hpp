// Lightweight statistics collectors used by the simulator's metrics layer
// and the benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mr {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integer-valued histogram with exact counts for small values.
/// Used for queue occupancies and per-packet latencies.
///
/// Memory is bounded: values below kDenseLimit get exact dense counts;
/// values at or above it are folded into a single overflow bucket that
/// tracks count / min / max / sum, so one pathological sample (e.g. a
/// corrupted latency of 10^15) costs O(1) memory instead of O(value).
/// min/max/mean stay exact with overflow samples; percentiles that land in
/// the overflow region conservatively report max().
class Histogram {
 public:
  /// Dense region size: per-step latencies and occupancies in any realistic
  /// run sit far below this, so normal histograms stay exact.
  static constexpr std::int64_t kDenseLimit = std::int64_t{1} << 20;

  void add(std::int64_t value, std::int64_t count = 1);

  std::int64_t total() const { return total_; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;
  /// Smallest v such that at least q fraction of samples are <= v. The
  /// target count is clamped to >= 1, so percentile(0) is the smallest
  /// recorded value, never an empty bucket below it.
  std::int64_t percentile(double q) const;
  /// Count of samples equal to v. Values >= kDenseLimit are not
  /// individually countable (they live in the overflow bucket) and
  /// report 0; overflow_count() has their aggregate.
  std::int64_t count_at(std::int64_t v) const;
  /// Number of samples folded into the overflow bucket (>= kDenseLimit).
  std::int64_t overflow_count() const { return overflow_count_; }

  std::string summary() const;  ///< "mean=.. p50=.. p99=.. max=.."

 private:
  std::vector<std::int64_t> counts_;  // counts_[v] = multiplicity of value v
  std::int64_t total_ = 0;
  // Aggregate of samples >= kDenseLimit.
  std::int64_t overflow_count_ = 0;
  std::int64_t overflow_min_ = 0;
  std::int64_t overflow_max_ = 0;
  double overflow_sum_ = 0.0;
};

}  // namespace mr
