file(REMOVE_RECURSE
  "CMakeFiles/congestion_map.dir/congestion_map.cpp.o"
  "CMakeFiles/congestion_map.dir/congestion_map.cpp.o.d"
  "congestion_map"
  "congestion_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
