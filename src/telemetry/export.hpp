// meshroute-telemetry/1 export: one JSONL file per run (header record,
// time-series records, heatmap records, optional phase-profile record,
// summary record) plus CSV companions of the series and heatmap tables,
// built on the harness json_min / csv_export backends.
#pragma once

#include <optional>
#include <string>

#include "sim/engine.hpp"
#include "telemetry/telemetry.hpp"

namespace mr {

inline constexpr const char* kTelemetryJsonSchema = "meshroute-telemetry/1";

/// Run identity and outcome stamped into the header/summary records; the
/// caller (runner, bench driver) fills this from its RunSpec/Engine.
struct TelemetryRunInfo {
  std::string run;        ///< export slug, e.g. "e01_dimension-order"
  std::string algorithm;  ///< registry name
  std::int32_t width = 0;
  std::int32_t height = 0;
  bool torus = false;
  int queue_capacity = 1;
  QueueLayout layout = QueueLayout::Central;
  Step steps = 0;
  std::size_t packets = 0;
  std::size_t delivered = 0;
  bool stalled = false;
};

/// Serialises collector + run info as meshroute-telemetry/1 JSONL.
std::string telemetry_to_jsonl(const TelemetryCollector& collector,
                               const TelemetryRunInfo& info,
                               const PhaseProfile* profile);

/// Writes <dir>/<slug>.jsonl (creating dir) plus <slug>_series.csv and
/// <slug>_heatmap.csv. The slug is info.run sanitised to [a-z0-9_-].
/// Returns the JSONL path, or empty on I/O failure.
std::string write_telemetry(const TelemetryCollector& collector,
                            const TelemetryRunInfo& info,
                            const PhaseProfile* profile,
                            const std::string& dir);

/// Validates a meshroute-telemetry/1 JSONL file line by line through
/// json_min: exactly one leading header record carrying the schema, every
/// record an object with a known "kind", required numeric fields present,
/// exactly one trailing summary. On failure stores a message in *error.
bool validate_telemetry_jsonl(const std::string& path, std::string* error);

}  // namespace mr
