// Naive reference implementation of the §3 step pipeline, for differential
// verification against the optimized Engine (sim/engine.hpp).
//
// ReferenceEngine deliberately avoids every optimisation the production
// engine carries: no incremental occupancy counters (queues are counted by
// scanning), no cached profitable masks (Sim::profitable_mask recomputes
// from the mesh on every call), no sorted-active merge (nodes are found by
// a full ascending scan each phase), no per-direction offer buckets (offers
// are comparison-sorted by (receiving node, travel direction)), and no
// queue-slot indices (removal scans the queue). Each phase is written as a
// direct transcription of §3:
//   injection → (a) plan_out → (b) adversary exchanges → (c) plan_in →
//   (d) transmit → (e) update_state → stall detection → observer digest.
//
// The two engines share only the Sim base (state layout + fingerprint),
// Packet, Algorithm and Topology. Their observable behaviour — fingerprints,
// step digests, counters, stall decisions — must be bit-identical on every
// input; the differential fuzzer (check/fuzz.hpp) asserts exactly that.
#pragma once

#include <vector>

#include "sim/algorithm.hpp"
#include "sim/sim.hpp"
#include "topo/topology.hpp"

namespace mr {

class ReferenceEngine : public Sim {
 public:
  /// Same parameters as Engine::Config, taken flat so check/ stays
  /// independent of the optimized engine's header.
  ReferenceEngine(const Topology& topo, int queue_capacity, Step stall_limit,
                  Algorithm& algorithm);

  /// See Engine::add_packet.
  PacketId add_packet(NodeId source, NodeId dest, Step injected_at = 0);

  void set_interceptor(StepInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// See Engine::prepare.
  void prepare();
  /// Executes one §3 step; false if the network was already drained.
  bool step_once();
  /// Steps until drained, stalled, or max_steps executed.
  Step run(Step max_steps);

  // --- Sim interface -----------------------------------------------------
  std::span<const NodeId> active_nodes() const override { return active_; }
  /// Counted by scanning the node's queue — no counters to drift.
  int occupancy(NodeId u, QueueTag tag) const override;
  using Sim::occupancy;
  void exchange_destinations(PacketId a, PacketId b) override;

 private:
  void inject_due_packets();
  void place_packet(PacketId p, NodeId node, QueueTag tag);
  void remove_from_node(PacketId p);
  void validate_out_plan(NodeId u, const OutPlan& plan,
                         std::vector<std::uint8_t>& scheduled);
  void record_occupancy(NodeId u);
  void rebuild_active();
  QueueTag injection_queue_tag(PacketId p) const;

  Algorithm& algorithm_;
  Step stall_limit_;
  bool enforce_minimal_;
  int max_stray_ = -1;

  StepInterceptor* interceptor_ = nullptr;
  bool prepared_ = false;
  Step stall_run_ = 0;
  std::int64_t injected_this_step_ = 0;

  /// Rebuilt from scratch (full node scan) after every step.
  std::vector<NodeId> active_;
  std::vector<PacketId> injected_deliveries_;
};

}  // namespace mr
