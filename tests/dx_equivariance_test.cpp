// Lemma 10 as an executable property: for a destination-exchangeable
// algorithm, swapping the destinations of two packets whose profitable
// masks are unaffected must produce the *identical* execution, with only
// the two destination fields swapped. Farthest-first, which reads full
// destination addresses, serves as the negative control.
#include <gtest/gtest.h>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct Snapshot {
  std::vector<NodeId> locations;
  std::vector<NodeId> dests;
  std::vector<std::uint64_t> states;
};

Snapshot run_steps(const std::string& algorithm, const Workload& w, int k,
                   Step steps) {
  const Mesh mesh = Mesh::square(12);
  auto algo = make_algorithm(algorithm);
  Engine::Config config;
  config.queue_capacity = k;
  Engine e(mesh, config, *algo);
  for (const Demand& d : w) e.add_packet(d.source, d.dest, d.injected_at);
  e.prepare();
  for (Step t = 0; t < steps; ++t) e.step_once();
  Snapshot s;
  for (const Packet& p : e.all_packets()) {
    s.locations.push_back(p.location);
    s.dests.push_back(p.dest);
    s.states.push_back(p.state);
  }
  return s;
}

/// Base workload: a crowd of northeast-bound packets in the southwest
/// corner (contention included), with packets 0 and 1 sharing a node.
Workload base_workload(const Mesh& mesh, NodeId d0, NodeId d1) {
  Workload w;
  w.push_back(Demand{mesh.id_of(0, 0), d0, 0});
  w.push_back(Demand{mesh.id_of(0, 0), d1, 0});
  for (std::int32_t c = 0; c < 4; ++c)
    for (std::int32_t r = 0; r < 4; ++r)
      if (!(c == 0 && r == 0))
        w.push_back(Demand{mesh.id_of(c, r), mesh.id_of(c + 7, r + 7), 0});
  return w;
}

class DxEquivariance : public ::testing::TestWithParam<std::string> {};

TEST_P(DxEquivariance, SwapIsInvisible) {
  const Mesh mesh = Mesh::square(12);
  // Both destinations strictly northeast of anywhere packets 0/1 can reach
  // in 5 steps, so their profitable masks stay {N,E} under either pairing.
  const NodeId d0 = mesh.id_of(9, 11);
  const NodeId d1 = mesh.id_of(11, 9);
  const Workload w_orig = base_workload(mesh, d0, d1);
  const Workload w_swap = base_workload(mesh, d1, d0);

  for (int k : {1, 2}) {
    const Snapshot a = run_steps(GetParam(), w_orig, k, 5);
    const Snapshot b = run_steps(GetParam(), w_swap, k, 5);
    ASSERT_EQ(a.locations.size(), b.locations.size());
    // Lemma 10/11: identical configuration, destinations 0/1 swapped.
    EXPECT_EQ(a.locations, b.locations) << GetParam() << " k=" << k;
    EXPECT_EQ(a.states, b.states);
    EXPECT_EQ(a.dests[0], b.dests[1]);
    EXPECT_EQ(a.dests[1], b.dests[0]);
    for (std::size_t i = 2; i < a.dests.size(); ++i)
      EXPECT_EQ(a.dests[i], b.dests[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(DxAlgorithms, DxEquivariance,
                         ::testing::ValuesIn(dx_minimal_algorithm_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(DxEquivariance, BoundedDimensionOrderIsAlsoDx) {
  // Theorem 15's router is destination-exchangeable too; same property,
  // horizontal-only packets.
  const Mesh mesh = Mesh::square(12);
  Workload w_orig, w_swap;
  w_orig.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(9, 0), 0});
  w_orig.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(11, 0), 0});
  w_swap.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(11, 0), 0});
  w_swap.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(9, 0), 0});
  const Snapshot a = run_steps("bounded-dimension-order", w_orig, 2, 4);
  const Snapshot b = run_steps("bounded-dimension-order", w_swap, 2, 4);
  EXPECT_EQ(a.locations, b.locations);
  EXPECT_EQ(a.dests[0], b.dests[1]);
  EXPECT_EQ(a.dests[1], b.dests[0]);
}

TEST(DxEquivariance, FarthestFirstIsNotDx) {
  // Negative control: two packets in one node, both eastbound, different
  // distances. Farthest-first advances the farther one, so swapping the
  // destinations swaps which packet moves — the configurations must differ
  // beyond the destination swap.
  const Mesh mesh = Mesh::square(12);
  Workload w_orig, w_swap;
  w_orig.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(9, 0), 0});
  w_orig.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(5, 0), 0});
  w_swap.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(5, 0), 0});
  w_swap.push_back(Demand{mesh.id_of(0, 0), mesh.id_of(9, 0), 0});
  const Snapshot a = run_steps("farthest-first", w_orig, 2, 2);
  const Snapshot b = run_steps("farthest-first", w_swap, 2, 2);
  EXPECT_NE(a.locations, b.locations);
}

}  // namespace
}  // namespace mr
