// The §6 deterministic, minimal adaptive, O(n)-time, O(1)-queue routing
// algorithm (Theorem 34).
//
// Structure (paper §6.1): the four direction classes NE, NW, SE, SW are
// routed sequentially. For each class, iterations j = 0, 1, ... use tiles
// of side T = n/3^j (three shifted tilings per Lemma 19, one at j = 0); a
// Vertical Phase (March → Sort&Smooth even → Sort&Smooth odd → Horizontal
// Balancing) runs for each tiling, then a Horizontal Phase (the transpose)
// for each tiling. When T < 27 the remaining packets — now within 2 rows
// and 2 columns of their destinations (Lemma 18 with d = 1) — are finished
// by ≤ 14 steps of farthest-first dimension-order routing (Lemma 32).
//
// Every phase has an a-priori duration (Lemmas 29–31), so nodes need no
// global communication: the whole schedule is a fixed timeline computed
// from n and q. The implementation runs through the standard Engine (which
// enforces minimality and queue capacity) with this class as the Algorithm;
// all per-phase rules are expressed in a canonical coordinate frame
// (rotation per class, plus a transpose for horizontal phases) so the
// Vertical Phase code serves all eight phase variants.
//
// The implementation checks the paper's per-phase lemmas online:
//   * March ends with every active packet in its staging strip (Lemma 29),
//   * Sort&Smooth ends with every active packet in strip i−2 (Lemma 30),
//   * Balancing ends with ≤ 2 active packets per node (Lemmas 24/31),
//   * the 2-rule never selects a packet with nothing left to gain
//     (Lemmas 16/17: no overshoot),
//   * the base case drains within its 14 steps (Lemma 32).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/algorithm.hpp"
#include "sim/engine.hpp"

namespace mr {

class FastRouteAlgorithm final : public Algorithm {
 public:
  struct Options {
    /// March/staging capacity: q = 17·(27−3) = 408 in the baseline
    /// analysis; §6.4's improvement uses q = 17·(9−3) = 102 for j ≥ 1.
    int q0 = 408;
    int q_later = 408;  ///< set to 102 for the "improved" variant

    static Options baseline() { return Options{408, 408}; }
    static Options improved() { return Options{408, 102}; }
  };

  explicit FastRouteAlgorithm(Options options = Options::baseline());

  std::string name() const override { return "fastroute"; }
  bool minimal() const override { return true; }

  void init(Sim& e) override;
  void plan_out(Sim& e, NodeId u, OutPlan& plan) override;
  void plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
               InPlan& plan) override;

  // ---- schedule introspection (tests / E09 / E10) ----------------------
  enum class Kind : std::uint8_t {
    March,
    SortSmoothEven,
    SortSmoothOdd,
    Balance,
    BaseCase,
  };

  struct Segment {
    Kind kind = Kind::March;
    int cls = 0;        ///< 0 NE, 1 NW, 2 SW, 3 SE
    int j = 0;          ///< iteration
    int tiling = 0;     ///< 0..2
    bool horizontal = false;  ///< part of a Horizontal Phase (transposed)
    std::int32_t tile = 0;    ///< tile side T
    std::int32_t d = 0;       ///< strip height T/27 (0 for base case)
    Step start = 0;           ///< segment covers steps (start, start+len]
    Step length = 0;
    // measured during the run:
    Step last_move_offset = 0;  ///< last step-within-segment that moved
    std::int64_t moves = 0;
    int peak_active_per_node = 0;
  };

  const std::vector<Segment>& segments() const { return segments_; }
  Step schedule_length() const { return schedule_length_; }
  static const char* kind_name(Kind k);
  static const char* class_name(int cls);

  /// Total queue bound the engine should be configured with (Lemma 28).
  int queue_bound() const { return 2 * options_.q0 + 18; }

 private:
  struct ClassInfo;  // per-packet bookkeeping

  void build_schedule(std::int32_t n);
  void refresh(Sim& e);
  void enter_segment(Sim& e, std::size_t idx);
  void check_segment_end(Sim& e, const Segment& seg);
  void detect_moves(Sim& e);

  // canonical-frame helpers for the current segment
  Coord to_canon(Coord real) const;
  Dir canon_north_real() const;
  Dir canon_east_real() const;
  std::int32_t strip_of(Coord canon) const;          // within its tile
  std::int32_t tile_origin_row(Coord canon) const;   // canonical tile row0
  std::int32_t tile_origin_col(Coord canon) const;

  void plan_march(Sim& e, NodeId u, OutPlan& plan);
  void plan_sort_smooth(Sim& e, NodeId u, OutPlan& plan, bool even);
  void plan_balance(Sim& e, NodeId u, OutPlan& plan);
  void plan_base_case(Sim& e, NodeId u, OutPlan& plan);

  Options options_;
  std::int32_t n_ = 0;
  std::vector<Segment> segments_;
  Step schedule_length_ = 0;

  // per-packet state
  std::vector<int> packet_class_;        // 0..3
  std::vector<NodeId> prev_location_;    // real node ids
  std::vector<Step> moved_north_at_;     // last step moved canonical north
  // subphase-frozen flags
  std::vector<std::uint8_t> participates_;
  std::vector<std::uint8_t> active_;
  std::vector<std::int32_t> dest_strip_;   // canonical, frozen per subphase
  std::vector<std::uint8_t> ss_forward_;   // Sort&Smooth: forward (not hold)

  // per-node state (indexed by real NodeId)
  std::vector<std::int32_t> staged_count_;   // March staging occupancy
  std::vector<std::int64_t> ss_received_;    // Sort&Smooth receive counters
  std::vector<std::int32_t> active_count_;   // active participants per node

  std::size_t current_segment_ = 0;
  Step cached_step_ = -1;
  int rotation_ = 0;       // class rotation count for current segment
  bool transposed_ = false;
  int q_ = 408;            // q for current segment
  Dir canon_north_ = Dir::North;  // real direction of canonical north
  Dir canon_east_ = Dir::East;    // real direction of canonical east
};

}  // namespace mr
