// Bit-identical equivalence of the sharded parallel engine (DESIGN.md §9)
// with the sequential engine: per-step fingerprints, digest streams and
// final counters must match for every registered router across shard
// (tile) counts and thread counts, on the mesh and the torus, including
// uneven bands (height not divisible by the shard count) and the staggered
// -injection / full-queue waiting paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracles.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

struct Mode {
  int shards = 1;
  int threads = 1;
};

struct Trace {
  std::vector<std::uint64_t> fingerprints;  // post-prepare + per step
  std::uint64_t digest_hash = 0;
  std::int64_t total_moves = 0;
  std::size_t delivered = 0;
  int max_occupancy = 0;
  bool stalled = false;
};

Trace trace(const std::string& router, std::int32_t n, bool torus, int k,
            std::uint64_t seed, Step steps, Mode mode) {
  const Mesh mesh = Mesh::square(n, torus);
  Engine::Config config;
  config.queue_capacity = k;
  config.shards = mode.shards;
  config.threads = mode.threads;
  Engine e(mesh, config, [&] { return make_algorithm(router); });
  const Workload w = random_hh(mesh, 2, seed);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Step at = (i % 5 == 0) ? static_cast<Step>(i % 7) : 0;
    e.add_packet(w[i].source, w[i].dest, at);
  }
  // Extra packets at already-used sources force the waiting-injection path.
  for (std::int32_t c = 0; c < 6 && c < n; ++c)
    e.add_packet(mesh.id_of(c, 0), mesh.id_of(n - 1, n - 1), /*injected_at=*/2);
  DigestHasher hasher;
  e.add_observer(&hasher);
  e.prepare();
  Trace t;
  t.fingerprints.push_back(e.fingerprint());
  for (Step s = 0; s < steps && !e.all_delivered() && !e.stalled(); ++s) {
    e.step_once();
    t.fingerprints.push_back(e.fingerprint());
  }
  t.digest_hash = hasher.hash();
  t.total_moves = e.total_moves();
  t.delivered = e.delivered_count();
  t.max_occupancy = e.max_occupancy_seen();
  t.stalled = e.stalled();
  return t;
}

void expect_identical(const Trace& seq, const Trace& par,
                      const std::string& label) {
  ASSERT_EQ(seq.fingerprints.size(), par.fingerprints.size()) << label;
  for (std::size_t i = 0; i < seq.fingerprints.size(); ++i)
    ASSERT_EQ(seq.fingerprints[i], par.fingerprints[i])
        << label << " fingerprint diverges at step " << i;
  EXPECT_EQ(seq.digest_hash, par.digest_hash) << label;
  EXPECT_EQ(seq.total_moves, par.total_moves) << label;
  EXPECT_EQ(seq.delivered, par.delivered) << label;
  EXPECT_EQ(seq.max_occupancy, par.max_occupancy) << label;
  EXPECT_EQ(seq.stalled, par.stalled) << label;
}

std::string label_of(const std::string& router, bool torus, Mode m) {
  std::ostringstream os;
  os << router << (torus ? "/torus" : "/mesh") << "/shards" << m.shards
     << "/threads" << m.threads;
  return os.str();
}

// ISSUE #6 acceptance grid: thread counts {1, 2, 4, 8} plus tile-size
// variation, including shard counts that divide the mesh height unevenly
// (n = 11 with 2, 3 and 8 bands) and shards > threads.
const Mode kModes[] = {
    {2, 1}, {2, 2}, {3, 2}, {4, 4}, {8, 8}, {11, 4},
};

TEST(ParallelEngine, AllRoutersMatchSequentialOnMesh) {
  constexpr std::int32_t n = 11;
  for (const std::string& router : algorithm_names()) {
    const Trace seq = trace(router, n, false, 2, 17, 40, Mode{1, 1});
    for (const Mode& m : kModes) {
      const Trace par = trace(router, n, false, 2, 17, 40, m);
      expect_identical(seq, par, label_of(router, false, m));
    }
  }
}

TEST(ParallelEngine, DxRoutersMatchSequentialOnTorus) {
  // Wrap links exercise the cyclic frontier mailboxes (band 0 <-> last
  // band) and the torus offer-sorting path.
  constexpr std::int32_t n = 8;
  for (const std::string& router : dx_minimal_algorithm_names()) {
    const Trace seq = trace(router, n, true, 2, 23, 40, Mode{1, 1});
    for (const Mode& m : {Mode{2, 2}, Mode{3, 2}, Mode{8, 4}}) {
      const Trace par = trace(router, n, true, 2, 23, 40, m);
      expect_identical(seq, par, label_of(router, true, m));
    }
  }
}

TEST(ParallelEngine, BoundedDimensionOrderMatchesOnTorus) {
  const Trace seq =
      trace("bounded-dimension-order", 8, true, 2, 29, 40, Mode{1, 1});
  for (const Mode& m : {Mode{2, 2}, Mode{4, 4}}) {
    const Trace par = trace("bounded-dimension-order", 8, true, 2, 29, 40, m);
    expect_identical(seq, par, label_of("bounded-dimension-order", true, m));
  }
}

TEST(ParallelEngine, EmpsMatchesOnTorus) {
  // The EMPS competitor is full-information and per-inlink; its wrap-tie
  // handling (East/North win) must survive band handoffs unchanged.
  const Trace seq = trace("emps", 8, true, 2, 37, 40, Mode{1, 1});
  for (const Mode& m : {Mode{2, 2}, Mode{3, 2}, Mode{8, 4}}) {
    const Trace par = trace("emps", 8, true, 2, 37, 40, m);
    expect_identical(seq, par, label_of("emps", true, m));
  }
}

TEST(ParallelEngine, ShardsClampToMeshHeight) {
  // More shards than rows must degrade gracefully to one band per row.
  const Trace seq = trace("dimension-order", 4, false, 2, 31, 30, Mode{1, 1});
  const Trace par = trace("dimension-order", 4, false, 2, 31, 30, Mode{64, 8});
  expect_identical(seq, par, "clamped-shards");
}

TEST(ParallelEngine, SingleAlgorithmConstructorRequiresSerialTiles) {
  const Mesh mesh = Mesh::square(6, false);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.shards = 3;
  config.threads = 1;  // serial tiles: one shared instance is fine
  Engine ok(mesh, config, *algo);
  EXPECT_EQ(ok.shard_count(), 3);
  config.threads = 2;  // concurrent tiles need per-band instances
  auto algo2 = make_algorithm("dimension-order");
  EXPECT_THROW(Engine(mesh, config, *algo2), InvariantViolation);
}

TEST(ParallelEngine, InterceptorRejectedInShardedMode) {
  class NullInterceptor : public StepInterceptor {
    void after_schedule(Sim&, std::span<const ScheduledMove>) override {}
  };
  const Mesh mesh = Mesh::square(6, false);
  Engine::Config config;
  config.shards = 2;
  Engine e(mesh, config, [] { return make_algorithm("dimension-order"); });
  NullInterceptor interceptor;
  EXPECT_THROW(e.set_interceptor(&interceptor), InvariantViolation);
}

}  // namespace
}  // namespace mr
