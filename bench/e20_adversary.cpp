// E20 — constructed vs. searched worst cases: the online greedy adversary
// (check/adversary.hpp) against the §3/§4 constructed instance.
//
// The constructed instance is an offline certificate: the exchange
// strategy of Theorem 14 is proved to congest a DX minimal router for
// Ω(n²/k²) steps, and routing its extracted permutation fills queues to
// the brim. The online GreedyAdversary knows nothing about the instance —
// it starts from a plain random permutation and, each step, legally
// re-aims destinations at the hottest queue it has observed so far. The
// scenario measures whether that blind search reaches the constructed
// instance's peak queue pressure, and confirms the engine's queue bound
// survives adversarial steering (max occupancy never exceeds k). A third
// run layers a transient fault window on top of the adversary to exercise
// reroute-or-stall end to end: every packet still delivers once the
// faults lift.
#include <string>
#include <vector>

#include "lower_bound/factory.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"
#include "workload/permutation.hpp"

namespace mr::scenarios {

void register_e20(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E20";
  spec.label = "online-adversary";
  spec.title = "online greedy adversary vs the constructed instance";
  spec.paper_ref = "§2 (adversary model), Theorem 14, §3–§4";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<std::pair<int, int>> sizes = {{60, 1}, {120, 1}, {120, 2}};
    if (ctx.scale() == Scale::Small) sizes = {{60, 1}};
    if (ctx.scale() == Scale::Large) sizes.push_back({216, 1});
    const std::string algorithm = dx_minimal_algorithm_names().front();
    const std::uint64_t seed = ctx.seed_or(2000);

    Table table({"n", "k", "constructed peak", "constructed steps",
                 "adversary peak", "adversary steps", "peak <= k"});
    bool adversary_matched = false;
    bool bound_held = true;
    for (const auto& [n, k] : sizes) {
      const AdversarialInstance inst =
          adversarial_instance("main", n, k, algorithm);
      if (!inst.valid) continue;

      RunSpec constructed;
      constructed.topology = inst.topology;
      constructed.width = inst.width;
      constructed.height = inst.height;
      constructed.queue_capacity = k;
      constructed.algorithm = algorithm;
      const std::string tag =
          "n" + std::to_string(n) + "_k" + std::to_string(k);
      const RunResult base =
          ctx.run("constructed_" + tag, constructed, inst.permutation);

      RunSpec searched = constructed;
      searched.adversary = true;
      // An online adversary may legally keep the network busy forever
      // (packets keep moving toward ever-exchanged destinations, so the
      // stall detector never fires). Peak queue pressure shows up within
      // the first few hundred steps; cap the budget instead of waiting
      // out the default drain bound.
      searched.max_steps = 2000 + 20 * static_cast<Step>(n);
      const RunResult adv = ctx.run("adversary_" + tag, searched,
                                    random_permutation(Mesh::square(n), seed));

      const bool le_k = base.max_queue <= k && adv.max_queue <= k;
      bound_held = bound_held && le_k;
      if (adv.max_queue >= base.max_queue) adversary_matched = true;
      table.row()
          .add(n)
          .add(k)
          .add(base.max_queue)
          .add(base.steps)
          .add(adv.max_queue)
          .add(adv.steps)
          .add(le_k ? "yes" : "NO");
    }
    ctx.table(table);
    ctx.note(
        "'constructed' routes the Theorem 14 permutation untouched; "
        "'adversary' starts from a random permutation and exchanges "
        "destinations online toward the fullest observed queue. A blind "
        "online strategy matching the constructed peak shows the §2 "
        "adversary hook gives real steering power; peak <= k shows the "
        "queue bound survives it.");
    ctx.check("adversary-reaches-constructed-peak", adversary_matched);
    ctx.check("queue-bound-holds-under-adversary", bound_held);

    // Reroute-or-stall: a transient node fault plus a transient link fault
    // mid-run (no adversary — an active adversary may legally withhold
    // delivery forever, so "everything delivers" is only a theorem once
    // destinations stop moving; and a light partial permutation — full
    // permutations at k=2 deadlock even fault-free, which is the paper's
    // motivating observation, not a fault artefact). The schedule lifts,
    // so the run must still deliver everything; while it is active the
    // engine defers injections at the down node and drops moves onto down
    // links (both surfaced in telemetry).
    {
      const int n = 16, k = 2;
      RunSpec faulted;
      faulted.width = n;
      faulted.height = n;
      faulted.queue_capacity = k;
      faulted.algorithm = algorithm;
      FaultSchedule faults;
      std::string error;
      MR_REQUIRE_MSG(
          parse_fault_schedule("node:17@4-40,link:35:E@8-64", &faults, &error),
          "E20 fault schedule: " << error);
      faulted.faults = faults;
      const Workload light =
          random_partial_permutation(Mesh::square(n), 0.2, seed);
      const RunResult r = ctx.run("faulted_n16_k2", faulted, light);
      ctx.check("faulted-run-delivers-after-window", r.all_delivered,
                "delivered " + std::to_string(r.delivered) + "/" +
                    std::to_string(r.packets) + " in " +
                    std::to_string(r.steps) + " steps");
    }
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
