// Snapshot/restore property tests: a run snapshotted at step t, serialized
// through the meshroute-snapshot/1 wire format and restored must continue
// bit-identically to the uninterrupted run — same fingerprint stream, same
// StepDigest stream, same final counters — for every registry algorithm on
// every topology family and on the sharded engine. Plus negative coverage:
// corrupt wire bytes and mismatched headers fail with the typed
// SnapshotError kinds, never silently.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/oracles.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"
#include "topo/registry.hpp"
#include "workload/permutation.hpp"

namespace mr {
namespace {

constexpr std::int32_t kN = 6;
constexpr Step kSnapshotStep = 3;
constexpr Step kBudget = 4096;

struct Outcome {
  std::uint64_t fingerprint = 0;
  std::uint64_t tail_digest = 0;  ///< DigestHasher over steps > kSnapshotStep
  Step steps = 0;
  std::size_t delivered = 0;
  std::int64_t total_moves = 0;
  std::uint64_t exchanges = 0;
  int max_occupancy = 0;
};

/// The workload every case routes: a permutation with staggered
/// injections, so future-dated injections are still pending at the
/// snapshot step and the waiting-list machinery is exercised.
Workload staggered_workload(const Topology& topo) {
  Workload w = random_permutation(topo, 42);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i].injected_at = static_cast<Step>(i % 8);
  return w;
}

Engine::Config engine_config(int shards) {
  Engine::Config config;
  config.queue_capacity = 2;
  config.stall_limit = 64;
  config.shards = shards;
  config.threads = shards > 1 ? 2 : 1;
  return config;
}

void run_tail(Engine& engine, Outcome* out) {
  DigestHasher tail;
  engine.add_observer(&tail);
  for (Step t = 0; t < kBudget; ++t)
    if (!engine.step_once()) break;
  out->fingerprint = engine.fingerprint(true);
  out->tail_digest = tail.hash();
  out->steps = engine.step();
  out->delivered = engine.delivered_count();
  out->total_moves = engine.total_moves();
  out->exchanges = engine.exchange_count();
  out->max_occupancy = engine.max_occupancy_seen();
}

/// Uninterrupted run, observing only the post-kSnapshotStep tail.
Outcome run_straight(const std::string& topo_name, const std::string& algo,
                     int shards) {
  const std::unique_ptr<Topology> topo = make_topology(topo_name, kN, kN);
  Engine engine(*topo, engine_config(shards),
                [&] { return make_algorithm(algo); });
  for (const Demand& d : staggered_workload(*topo))
    engine.add_packet(d.source, d.dest, d.injected_at);
  engine.prepare();
  while (engine.step() < kSnapshotStep && engine.step_once()) {
  }
  Outcome out;
  run_tail(engine, &out);
  return out;
}

/// Same run, but snapshotted at kSnapshotStep, round-tripped through the
/// wire format, and restored into a FRESH engine that never saw a packet.
Outcome run_restored(const std::string& topo_name, const std::string& algo,
                     int shards) {
  const std::unique_ptr<Topology> topo = make_topology(topo_name, kN, kN);
  EngineSnapshot snap;
  {
    Engine engine(*topo, engine_config(shards),
                  [&] { return make_algorithm(algo); });
    for (const Demand& d : staggered_workload(*topo))
      engine.add_packet(d.source, d.dest, d.injected_at);
    engine.prepare();
    while (engine.step() < kSnapshotStep && engine.step_once()) {
    }
    snap = parse_snapshot(serialize_snapshot(engine.snapshot()));
  }
  Engine fresh(*topo, engine_config(shards),
               [&] { return make_algorithm(algo); });
  fresh.restore(snap);
  Outcome out;
  run_tail(fresh, &out);
  return out;
}

TEST(Snapshot, RestoredRunsAreBitIdentical) {
  const std::vector<std::string> topologies = {"mesh", "torus", "cmesh-4"};
  for (const std::string& algo : algorithm_names()) {
    for (const std::string& topo : topologies) {
      if (topo == "torus" && !supports_torus(algo)) continue;
      for (const int shards : {1, 4}) {
        SCOPED_TRACE(algo + " on " + topo + " shards=" +
                     std::to_string(shards));
        const Outcome straight = run_straight(topo, algo, shards);
        const Outcome restored = run_restored(topo, algo, shards);
        EXPECT_EQ(restored.fingerprint, straight.fingerprint);
        EXPECT_EQ(restored.tail_digest, straight.tail_digest);
        EXPECT_EQ(restored.steps, straight.steps);
        EXPECT_EQ(restored.delivered, straight.delivered);
        EXPECT_EQ(restored.total_moves, straight.total_moves);
        EXPECT_EQ(restored.exchanges, straight.exchanges);
        EXPECT_EQ(restored.max_occupancy, straight.max_occupancy);
      }
    }
  }
}

// --- wire-format negative paths ------------------------------------------

EngineSnapshot sample_snapshot(const std::string& algo, int shards) {
  const std::unique_ptr<Topology> topo = make_topology("mesh", kN, kN);
  Engine engine(*topo, engine_config(shards),
                [&] { return make_algorithm(algo); });
  for (const Demand& d : staggered_workload(*topo))
    engine.add_packet(d.source, d.dest, d.injected_at);
  engine.prepare();
  while (engine.step() < kSnapshotStep && engine.step_once()) {
  }
  return engine.snapshot();
}

void expect_kind(const std::string& wire, SnapshotError::Kind kind) {
  try {
    (void)parse_snapshot(wire);
    FAIL() << "parse_snapshot accepted corrupt input";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), kind) << e.what();
  }
}

TEST(Snapshot, RejectsBadMagic) {
  std::string wire = serialize_snapshot(sample_snapshot("dimension-order", 1));
  wire[0] = 'X';
  expect_kind(wire, SnapshotError::Kind::Format);
}

TEST(Snapshot, RejectsCorruptPayload) {
  std::string wire = serialize_snapshot(sample_snapshot("dimension-order", 1));
  // Flip one payload byte: the checksum must catch it.
  wire.back() = static_cast<char>(wire.back() ^ 0x5A);
  expect_kind(wire, SnapshotError::Kind::Format);
}

TEST(Snapshot, RejectsTruncatedPayload) {
  std::string wire = serialize_snapshot(sample_snapshot("dimension-order", 1));
  wire.resize(wire.size() - 7);
  expect_kind(wire, SnapshotError::Kind::Format);
}

TEST(Snapshot, RestoreRejectsMismatchedEngine) {
  const EngineSnapshot snap = sample_snapshot("dimension-order", 1);
  const std::unique_ptr<Topology> topo = make_topology("mesh", kN, kN);

  {
    // Different algorithm.
    Engine other(*topo, engine_config(1),
                 [] { return make_algorithm("greedy-match"); });
    try {
      other.restore(snap);
      FAIL() << "restore accepted a foreign algorithm";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::Mismatch) << e.what();
    }
  }
  {
    // Different shard count.
    Engine other(*topo, engine_config(4),
                 [] { return make_algorithm("dimension-order"); });
    try {
      other.restore(snap);
      FAIL() << "restore accepted a foreign shard count";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::Mismatch) << e.what();
    }
  }
  {
    // Different topology family.
    const std::unique_ptr<Topology> torus = make_topology("torus", kN, kN);
    Engine other(*torus, engine_config(1),
                 [] { return make_algorithm("dimension-order"); });
    try {
      other.restore(snap);
      FAIL() << "restore accepted a foreign topology";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::Mismatch) << e.what();
    }
  }
}

TEST(Snapshot, FileRoundTripAndIoError) {
  const EngineSnapshot snap = sample_snapshot("bounded-dimension-order", 1);
  const std::string path = ::testing::TempDir() + "snapshot_test.ckpt";
  write_snapshot_file(path, snap);
  const EngineSnapshot back = read_snapshot_file(path);
  EXPECT_EQ(serialize_snapshot(back), serialize_snapshot(snap));
  try {
    (void)read_snapshot_file(path + ".does-not-exist");
    FAIL() << "read_snapshot_file accepted a missing file";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::Io) << e.what();
  }
}

}  // namespace
}  // namespace mr
