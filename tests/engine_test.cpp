#include <gtest/gtest.h>

#include "routing/dimension_order.hpp"
#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "topo/mesh.hpp"

namespace mr {
namespace {

Engine::Config cfg(int k) {
  Engine::Config c;
  c.queue_capacity = k;
  return c;
}

TEST(Engine, SinglePacketStraightLine) {
  const Mesh m = Mesh::square(8);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(0, 0), m.id_of(5, 0));
  e.prepare();
  const Step steps = e.run(100);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(steps, 5);  // one hop per step, delivered on arrival
  EXPECT_EQ(e.packet(0).delivered_at, 5);
}

TEST(Engine, PacketAtDestinationDeliversImmediately) {
  const Mesh m = Mesh::square(4);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(2, 2), m.id_of(2, 2));
  e.prepare();
  EXPECT_TRUE(e.all_delivered());
  EXPECT_EQ(e.packet(0).delivered_at, 0);
}

TEST(Engine, DimensionOrderPathIsRowFirst) {
  const Mesh m = Mesh::square(8);
  DimensionOrderRouter algo;
  Engine e(m, cfg(2), algo);
  e.add_packet(m.id_of(1, 1), m.id_of(4, 6));
  e.prepare();

  // Track the trajectory via an observer.
  struct Tracker : Observer {
    std::vector<NodeId> path;
    void on_move(const Sim&, const Packet&, NodeId, NodeId to) override {
      path.push_back(to);
    }
  };
  // Observer must be added before prepare, so rebuild.
  Engine e2(m, cfg(2), algo);
  e2.add_packet(m.id_of(1, 1), m.id_of(4, 6));
  Tracker tracker;
  e2.add_observer(&tracker);
  e2.prepare();
  e2.run(100);
  ASSERT_TRUE(e2.all_delivered());
  ASSERT_EQ(tracker.path.size(), 8u);  // 3 east + 5 north
  EXPECT_EQ(tracker.path[0], m.id_of(2, 1));
  EXPECT_EQ(tracker.path[2], m.id_of(4, 1));
  EXPECT_EQ(tracker.path[3], m.id_of(4, 2));
  EXPECT_EQ(tracker.path.back(), m.id_of(4, 6));
}

TEST(Engine, QueueCapacityIsRespected) {
  // Many packets funnel through one column; with k=2 the engine must never
  // observe more than 2 packets in a queue.
  const Mesh m = Mesh::square(8);
  DimensionOrderRouter algo;
  Engine e(m, cfg(2), algo);
  for (std::int32_t c = 0; c < 8; ++c)
    e.add_packet(m.id_of(c, 0), m.id_of(7, 7));  // not a permutation: h-h-ish
  e.prepare();
  e.run(500);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_LE(e.max_occupancy_seen(), 2);
}

TEST(Engine, MinimalityEnforced) {
  // An algorithm that tries an unprofitable move must be rejected.
  class BadAlgo : public Algorithm {
   public:
    std::string name() const override { return "bad"; }
    void plan_out(Sim& e, NodeId u, OutPlan& plan) override {
      // Schedule the packet *away* from its destination.
      const PacketId p = e.packets_at(u)[0];
      const DirMask good = e.profitable_mask(p);
      for (Dir d : kAllDirs) {
        if (!mask_has(good, d) && e.mesh().neighbor(u, d) != kInvalidNode) {
          plan.schedule(d, p);
          return;
        }
      }
    }
    void plan_in(Sim&, NodeId, std::span<const Offer> offers,
                 InPlan& plan) override {
      plan.reset(offers.size());
    }
  };
  const Mesh m = Mesh::square(4);
  BadAlgo algo;
  Engine e(m, cfg(1), algo);
  // Interior start so an unprofitable outlink with a live neighbour exists.
  e.add_packet(m.id_of(1, 1), m.id_of(3, 3));
  e.prepare();
  EXPECT_THROW(e.step_once(), InvariantViolation);
}

TEST(Engine, DeterministicFingerprints) {
  const Mesh m = Mesh::square(10);
  auto run_and_fingerprint = [&](Step steps) {
    auto algo = make_algorithm("adaptive-alternate");
    Engine e(m, cfg(1), *algo);
    int id = 0;
    for (std::int32_t c = 0; c < 10; ++c, ++id)
      e.add_packet(m.id_of(c, 0), m.id_of(9 - c, 9));
    e.prepare();
    for (Step t = 0; t < steps; ++t) e.step_once();
    return e.fingerprint();
  };
  EXPECT_EQ(run_and_fingerprint(7), run_and_fingerprint(7));
  EXPECT_NE(run_and_fingerprint(3), run_and_fingerprint(7));
}

TEST(Engine, DelayedInjection) {
  const Mesh m = Mesh::square(6);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(0, 0), m.id_of(3, 0), /*injected_at=*/5);
  e.prepare();
  e.step_once();  // t=1: nothing present yet
  EXPECT_EQ(e.delivered_count(), 0u);
  EXPECT_EQ(e.occupancy(m.id_of(0, 0)), 0);
  e.run(100);
  EXPECT_TRUE(e.all_delivered());
  // Appears at the start of step 5 and moves that same step: 3 hops land
  // it at steps 5, 6, 7.
  EXPECT_EQ(e.packet(0).delivered_at, 7);
}

TEST(Engine, InjectionWaitsWhenQueueFull) {
  // Two packets at the same source with k=1: the second waits outside the
  // network until the first departs (§5 dynamic h-h setting).
  const Mesh m = Mesh::square(6);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(0, 0), m.id_of(4, 0));
  e.add_packet(m.id_of(0, 0), m.id_of(0, 4));
  e.prepare();
  EXPECT_EQ(e.occupancy(m.id_of(0, 0)), 1);
  e.run(100);
  EXPECT_TRUE(e.all_delivered());
  EXPECT_LE(e.max_occupancy_seen(), 1);
}

TEST(Engine, ExchangeOutsideInterceptorThrows) {
  const Mesh m = Mesh::square(4);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(0, 0), m.id_of(3, 0));
  e.add_packet(m.id_of(0, 1), m.id_of(3, 1));
  e.prepare();
  EXPECT_THROW(e.exchange_destinations(0, 1), InvariantViolation);
}

TEST(Engine, InterceptorExchangeSwapsDestinations) {
  const Mesh m = Mesh::square(6);
  class Swapper : public StepInterceptor {
   public:
    bool done = false;
    void after_schedule(Sim& e, std::span<const ScheduledMove>) override {
      if (!done) {
        e.exchange_destinations(0, 1);
        done = true;
      }
    }
  };
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  // Both packets northeast-bound with overlapping profitable sets, so the
  // swap keeps scheduled moves minimal.
  e.add_packet(m.id_of(0, 0), m.id_of(4, 5));
  e.add_packet(m.id_of(1, 0), m.id_of(5, 4));
  Swapper swapper;
  e.set_interceptor(&swapper);
  e.prepare();
  e.step_once();
  EXPECT_EQ(e.packet(0).dest, m.id_of(5, 4));
  EXPECT_EQ(e.packet(1).dest, m.id_of(4, 5));
  EXPECT_EQ(e.exchange_count(), 1u);
}

/// Pathological router that never schedules or accepts anything — the
/// whole network is one big deadlock from step 1.
class FrozenRouter : public Algorithm {
 public:
  std::string name() const override { return "frozen"; }
  void plan_out(Sim&, NodeId, OutPlan&) override {}
  void plan_in(Sim&, NodeId, std::span<const Offer>,
               InPlan& plan) override {
    (void)plan;  // arrives reset: reject all
  }
};

TEST(Engine, StallDetectedWithPacketsWaitingOutside) {
  // Two packets share a source with k=1: the second never enters the
  // network and sits in the external buffer. A deadlocked network must
  // still be reported as stalled — packets waiting outside can only enter
  // once something moves, so they are not progress.
  const Mesh m = Mesh::square(4);
  FrozenRouter algo;
  Engine::Config config = cfg(1);
  config.stall_limit = 5;
  Engine e(m, config, algo);
  e.add_packet(m.id_of(0, 0), m.id_of(3, 0));
  e.add_packet(m.id_of(0, 0), m.id_of(0, 3));
  e.prepare();
  const Step steps = e.run(1000);
  EXPECT_TRUE(e.stalled());
  EXPECT_FALSE(e.all_delivered());
  EXPECT_LE(steps, 6);  // aborted at the stall limit, not the step cap
}

TEST(Engine, FutureInjectionIsNotAStall) {
  // An idle network awaiting a future-dated injection is not stalled: the
  // pending injection is exogenous progress.
  const Mesh m = Mesh::square(4);
  DimensionOrderRouter algo;
  Engine::Config config = cfg(1);
  config.stall_limit = 10;
  Engine e(m, config, algo);
  e.add_packet(m.id_of(0, 0), m.id_of(3, 0), /*injected_at=*/50);
  e.prepare();
  e.run(1000);
  EXPECT_FALSE(e.stalled());
  EXPECT_TRUE(e.all_delivered());
  // Enters its queue at the start of step 50, then three hops.
  EXPECT_EQ(e.packet(0).delivered_at, 52);
}

TEST(Engine, MetricsLatencyMatchesDeliveredAt) {
  const Mesh m = Mesh::square(8);
  DimensionOrderRouter algo;
  Engine e(m, cfg(1), algo);
  e.add_packet(m.id_of(0, 0), m.id_of(7, 0));
  MetricsObserver metrics;
  e.add_observer(&metrics);
  e.prepare();
  e.run(100);
  EXPECT_EQ(metrics.latency().max(), 7);
  EXPECT_EQ(metrics.latency().total(), 1);
}

}  // namespace
}  // namespace mr
