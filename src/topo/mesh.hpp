// Mesh and torus topology (paper §2, Figure 1).
//
// Columns are numbered west→east and rows south→north. Internally both are
// 0-based; the paper's 1-based "column 1..n" convention appears only in
// printed output. The network is the bidirected graph in which every node
// has an outlink and inlink per adjacent node (wrap-around links on the
// torus).
#pragma once

#include <vector>

#include "core/assert.hpp"
#include "core/types.hpp"

namespace mr {

class Mesh {
 public:
  /// An n×m mesh (width = columns, height = rows). `torus` adds wrap links.
  Mesh(std::int32_t width, std::int32_t height, bool torus = false);

  /// Square n×n mesh.
  static Mesh square(std::int32_t n, bool torus = false) {
    return Mesh(n, n, torus);
  }

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  bool is_torus() const { return torus_; }
  std::int32_t num_nodes() const { return width_ * height_; }

  bool contains(Coord c) const {
    return c.col >= 0 && c.col < width_ && c.row >= 0 && c.row < height_;
  }

  NodeId id_of(Coord c) const {
    MR_REQUIRE(contains(c));
    return c.row * width_ + c.col;
  }
  NodeId id_of(std::int32_t col, std::int32_t row) const {
    return id_of(Coord{col, row});
  }

  Coord coord_of(NodeId id) const {
    MR_REQUIRE(id >= 0 && id < num_nodes());
    return Coord{id % width_, id / width_};
  }

  /// Neighbour in direction d, or kInvalidNode if off the mesh edge.
  NodeId neighbor(NodeId id, Dir d) const;

  /// Signed displacement needed in each dimension to reach `to` from `from`
  /// along a shortest path: (east_delta, north_delta). On the torus the
  /// smaller wrap is chosen; an exact tie reports the positive direction
  /// but both_profitable() captures the ambiguity.
  struct Delta {
    std::int32_t east = 0;   ///< >0 move east, <0 move west
    std::int32_t north = 0;  ///< >0 move north, <0 move south
    bool east_tie = false;   ///< torus: both E and W are shortest
    bool north_tie = false;  ///< torus: both N and S are shortest
  };
  Delta delta(NodeId from, NodeId to) const;

  /// L1 (shortest-path) distance.
  std::int32_t distance(NodeId from, NodeId to) const;

  /// Profitable outlinks of a packet at `from` destined for `to`: the
  /// directions that strictly reduce distance (paper §2). Empty iff
  /// from == to.
  DirMask profitable_dirs(NodeId from, NodeId to) const;

  /// True if moving from `from` in direction d strictly reduces the
  /// distance to `to`.
  bool is_profitable(NodeId from, Dir d, NodeId to) const {
    return mask_has(profitable_dirs(from, to), d);
  }

  /// All node ids, row-major (south row first).
  std::vector<NodeId> all_nodes() const;

 private:
  std::int32_t width_;
  std::int32_t height_;
  bool torus_;
};

}  // namespace mr
