// E14 — Lemma 19: exhaustive verification of the three-tilings cover
// property at every tile size the §6 algorithm uses, plus tile statistics.
#include "fastroute/tiling.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e14(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E14";
  spec.label = "tiling-cover";
  spec.title = "three-tilings cover property";
  spec.paper_ref = "Lemma 19, §6.1";
  spec.body = [](ScenarioReport& ctx) {
    const std::int32_t n = ctx.scale() == Scale::Small ? 27 : 81;
    Table table({"n", "tile T", "h = T/3", "pairs checked", "uncovered",
                 "covered by tiling 0/1/2"});
    bool all_covered = true;
    for (std::int32_t tile = n; tile >= 9; tile /= 3) {
      const std::int32_t h = tile / 3;
      std::int64_t pairs = 0, uncovered = 0;
      std::int64_t by[3] = {0, 0, 0};
      for (std::int32_t ac = 0; ac < n; ++ac)
        for (std::int32_t ar = 0; ar < n; ++ar)
          for (std::int32_t dc = -h; dc <= h; ++dc)
            for (std::int32_t dr = -h; dr <= h; ++dr) {
              const Coord a{ac, ar};
              const Coord b{ac + dc, ar + dr};
              if (b.col < 0 || b.col >= n || b.row < 0 || b.row >= n)
                continue;
              ++pairs;
              const int o = covering_tiling(n, tile, a, b);
              if (o < 0) {
                ++uncovered;
              } else {
                ++by[o];
              }
            }
      all_covered = all_covered && uncovered == 0;
      table.row()
          .add(std::int64_t(n))
          .add(std::int64_t(tile))
          .add(std::int64_t(h))
          .add(pairs)
          .add(uncovered)
          .add(std::to_string(by[0]) + "/" + std::to_string(by[1]) + "/" +
               std::to_string(by[2]));
    }
    ctx.table(table);
    ctx.note("Lemma 19 holds iff the 'uncovered' column is all zeros.");
    ctx.check("lemma19-no-uncovered-pairs", all_covered);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
