// E18 — saturation throughput vs queue size k: bisection search for the
// highest sustainable per-node Bernoulli injection rate, per (algorithm,
// n, k). Theorem 15's Θ(n²/k + n) routing time for k-bounded queues says
// aggregate bandwidth scales with k, i.e. the sustainable per-node rate
// grows ≈ k/n until the bisection-free n term takes over — so saturation
// is monotone non-decreasing in k at fixed n. Central-queue dimension
// order additionally shows the deadlock floor: with tiny central queues
// the network deadlocks at vanishing load (saturation 0), while the §5
// per-inlink bounded router is deadlock-free from k=1 up.
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "scenarios.hpp"
#include "traffic/saturation.hpp"

namespace mr::scenarios {

void register_e18(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E18";
  spec.label = "saturation-vs-k";
  spec.title = "saturation throughput vs queue size k";
  spec.paper_ref = "Theorem 15 (Θ(n²/k + n) with k-bounded queues)";
  spec.body = [](ScenarioReport& ctx) {
    std::vector<int> ns = {16, 32};
    const std::vector<int> ks = {1, 2, 4, 8};
    Step warmup = 128, measure = 512;
    if (ctx.scale() == Scale::Small) {
      ns = {16};
      warmup = 64;
      measure = 192;
    }
    const std::vector<std::string> algorithms = {"dimension-order",
                                                 "bounded-dimension-order"};
    const std::uint64_t seed = ctx.seed_or(4200);

    struct Cell {
      std::string algorithm;
      int n = 0;
    };
    std::vector<Cell> cells;
    for (const std::string& a : algorithms)
      for (const int n : ns) cells.push_back({a, n});

    // One bisection per (algorithm, n, k). k values share the cell (and
    // the traffic seed), so each row of the table is directly comparable;
    // cells are independent and spread across the worker pool.
    const auto cell_results =
        sweep<std::vector<SaturationResult>>(cells.size(), [&](std::size_t c) {
          std::vector<SaturationResult> per_k;
          for (const int k : ks) {
            SaturationSpec search;
            search.base.width = search.base.height = cells[c].n;
            search.base.queue_capacity = k;
            search.base.algorithm = cells[c].algorithm;
            search.base.traffic.pattern = TrafficPattern::UniformRandom;
            search.base.traffic.seed = seed;  // same stream for every k
            search.base.warmup_steps = warmup;
            search.base.measure_steps = measure;
            search.resolution = 1.0 / 256.0;
            per_k.push_back(find_saturation_rate(search));
          }
          return per_k;
        });

    Table table({"algorithm", "n", "k", "saturation rate", "sat*n/k",
                 "first unsustainable", "probes"});
    bool monotone = true;
    std::string detail;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      double prev = -1;
      for (std::size_t i = 0; i < ks.size(); ++i) {
        const SaturationResult& r = cell_results[c][i];
        table.row()
            .add(cells[c].algorithm)
            .add(cells[c].n)
            .add(ks[i])
            .add(r.saturation_rate, 4)
            .add(r.saturation_rate * cells[c].n / ks[i], 3)
            .add(r.first_unsustainable, 4)
            .add(static_cast<std::int64_t>(r.probes.size()));
        if (cells[c].algorithm == "dimension-order" &&
            r.saturation_rate < prev) {
          monotone = false;
          detail += cells[c].algorithm + " n=" + std::to_string(cells[c].n) +
                    ": k=" + std::to_string(ks[i]) + " rate " +
                    std::to_string(r.saturation_rate) + " < k=" +
                    std::to_string(ks[i - 1]) + " rate " +
                    std::to_string(prev) + "; ";
        }
        prev = r.saturation_rate;
      }
    }
    ctx.table(table);
    ctx.note(
        "saturation rises with k at fixed n (the Theorem 15 bandwidth term "
        "n²/k in routing time ⇒ ≈ k/n sustainable per node), and "
        "central-queue dimension order needs a deadlock-avoiding k before "
        "it sustains anything at all, while the per-inlink bounded router "
        "already routes at k=1.");
    ctx.check("saturation-monotone-in-k", monotone, detail);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
