// The built-in experiment suite (E01–E22) as scenario registrations.
//
// Each e*.cpp file in this directory registers exactly one ScenarioSpec;
// the meshroute_bench driver (and the tests) get the whole suite through
// builtin(). Registration is explicit — no static-initializer tricks — so
// the suite's order and content are deterministic and linker-proof.
#pragma once

#include "harness/scenario.hpp"

namespace mr::scenarios {

void register_e01(ScenarioRegistry& registry);
void register_e02(ScenarioRegistry& registry);
void register_e03(ScenarioRegistry& registry);
void register_e04(ScenarioRegistry& registry);
void register_e05(ScenarioRegistry& registry);
void register_e06(ScenarioRegistry& registry);
void register_e07(ScenarioRegistry& registry);
void register_e08(ScenarioRegistry& registry);
void register_e09(ScenarioRegistry& registry);
void register_e10(ScenarioRegistry& registry);
void register_e11(ScenarioRegistry& registry);
void register_e12(ScenarioRegistry& registry);
void register_e13(ScenarioRegistry& registry);
void register_e14(ScenarioRegistry& registry);
void register_e15(ScenarioRegistry& registry);
void register_e16(ScenarioRegistry& registry);
void register_e17(ScenarioRegistry& registry);
void register_e18(ScenarioRegistry& registry);
void register_e19(ScenarioRegistry& registry);
void register_e20(ScenarioRegistry& registry);
void register_e21(ScenarioRegistry& registry);
void register_e22(ScenarioRegistry& registry);

/// Registers E01..E22 in order.
void register_all(ScenarioRegistry& registry);

/// The shared registry preloaded with the full suite (built on first use).
ScenarioRegistry& builtin();

}  // namespace mr::scenarios
