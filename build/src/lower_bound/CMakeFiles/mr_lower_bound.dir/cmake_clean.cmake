file(REMOVE_RECURSE
  "CMakeFiles/mr_lower_bound.dir/constants.cpp.o"
  "CMakeFiles/mr_lower_bound.dir/constants.cpp.o.d"
  "CMakeFiles/mr_lower_bound.dir/dim_order_construction.cpp.o"
  "CMakeFiles/mr_lower_bound.dir/dim_order_construction.cpp.o.d"
  "CMakeFiles/mr_lower_bound.dir/farthest_first_construction.cpp.o"
  "CMakeFiles/mr_lower_bound.dir/farthest_first_construction.cpp.o.d"
  "CMakeFiles/mr_lower_bound.dir/main_construction.cpp.o"
  "CMakeFiles/mr_lower_bound.dir/main_construction.cpp.o.d"
  "libmr_lower_bound.a"
  "libmr_lower_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_lower_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
