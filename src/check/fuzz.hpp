// Seeded differential fuzzer: random (mesh, k, algorithm, workload)
// configurations are run through both the optimized Engine and the naive
// ReferenceEngine in lock-step, asserting bit-identical fingerprints and
// step-digest hashes at every step while the paper-invariant oracles
// (check/oracles.hpp) watch the optimized engine. A failing configuration
// is shrunk (ddmin over the demand list) to a minimal repro, formatted as
// a single self-contained spec line that `meshroute_bench
// --fuzz-case=SPEC` re-runs.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "sim/fault.hpp"
#include "traffic/burst.hpp"
#include "workload/permutation.hpp"

namespace mr {

/// One fully specified differential-fuzz configuration.
struct FuzzCase {
  std::string algorithm;
  std::int32_t n = 6;       ///< square side (router grid)
  /// Registry topology name ("mesh", "torus", "cmesh-2", ...). Empty means
  /// "mesh"; the legacy `torus=1` spec key parses into topo = "torus".
  /// Demands and traffic always address the n×n router grid.
  std::string topo;
  int k = 2;                ///< queue capacity
  Step budget = 4096;       ///< step budget per engine
  /// Snapshot round-trip point: at step `ckpt` the optimized engine is
  /// serialized (sim/snapshot.hpp wire format), re-parsed and restored in
  /// place, and the differential run continues — any state the snapshot
  /// drops diverges from the reference on the very next step. -1 disables.
  Step ckpt = -1;
  Workload demands;         ///< materialized workload (with injection steps)

  /// Optional (l,k) workload on top of `demands`: an lk spec string
  /// ("variant:l:k:seed", workload/lk.hpp) expanded deterministically at
  /// run time. Empty disables. Shrinking flattens it into explicit
  /// demands first, like the traffic stream.
  std::string lk;

  /// Optional open-loop traffic workload on top of `demands`: a seeded
  /// Bernoulli stream (traffic pattern name, per-node rate, steps
  /// 1..tsteps) expanded deterministically at run time. "none" disables
  /// it. Shrinking flattens the stream into explicit demands first, so
  /// ddmin still applies.
  std::string traffic = "none";
  double rate = 0.1;
  std::uint64_t tseed = 1;
  Step tsteps = 0;
  /// Burst process modulating the traffic stream (traffic/burst.hpp);
  /// stationary ("none") by default. Only meaningful with an active
  /// traffic stream — the stream expansion goes through
  /// make_traffic_source, so bursty cases replay bit for bit from
  /// (traffic, rate, tseed, tsteps, burst).
  BurstSpec burst;

  /// Timed link/node fault schedule (sim/fault.hpp) installed in BOTH
  /// engines before prepare(), so a shrunk fault= repro replays the same
  /// reroute-or-stall decisions differentially. Empty disables.
  FaultSchedule faults;

  /// Sharded stepping mode for the optimized engine (DESIGN.md §9). The
  /// reference engine always runs sequentially, so any shards > 1 case is
  /// a differential check of the boundary-handoff determinism protocol.
  int shards = 1;
  int threads = 1;
};

/// True iff `algorithm` is defined across torus wrap links (the fuzzer and
/// the snapshot property tests gate their torus coverage on this).
bool supports_torus(const std::string& algorithm);

/// Spec-line round trip: "algo=<name> n=<n> k=<k> budget=<B>
/// [topo=<name>] [ckpt=<step>] [lk=<variant:l:k:seed>] [traffic=<pattern>
/// rate=<r> tseed=<s> tsteps=<t> [burst=<spec>]] [fault=<schedule>]
/// [shards=<s> threads=<t>] demands=<src>-<dst>@<step>,...".
/// topo is emitted only when set; ckpt only when >= 0; lk only when set
/// (workload/lk.hpp grammar); burst only when non-stationary
/// (traffic/burst.hpp grammar); fault only when the schedule is non-empty
/// (sim/fault.hpp grammar, comma-separated, no spaces); shards/threads
/// only when != 1. The legacy "torus=1" key parses as topo=torus.
std::string format_fuzz_case(const FuzzCase& c);
/// Parses a spec line; returns false and sets *error on malformed input.
bool parse_fuzz_case(const std::string& spec, FuzzCase* out,
                     std::string* error);

/// Runs one case differentially (both engines, all oracles). Returns the
/// empty string on success, else a description of the divergence or
/// invariant violation.
std::string run_fuzz_case(const FuzzCase& c);

/// Predicate deciding whether a case "fails": "" means pass, anything
/// else is the failure description. run_fuzz_case is the production
/// predicate; tests substitute their own to exercise the shrinker.
using FuzzRunner = std::function<std::string(const FuzzCase&)>;

/// Shrinks a failing case to a locally minimal repro that still fails
/// under `failing` (run_fuzz_case when empty): ddmin over the demand
/// list, then the fault-event list (whole-schedule drop first, then a
/// drop-one fixed point). Returns the shrunk case; no-op if `c` passes.
FuzzCase shrink_fuzz_case(const FuzzCase& c, const FuzzRunner& failing = {});

struct FuzzReport {
  std::size_t cases_run = 0;
  std::size_t failures = 0;
  std::string first_error;  ///< first divergence description
  std::string first_repro;  ///< shrunk spec line for the first failure
};

/// Samples and runs `num_cases` configurations from `seed`, logging one
/// line per case to `log`. Stops sampling new configurations after the
/// first failure (which it shrinks); the report carries the repro line.
FuzzReport run_fuzz(std::size_t num_cases, std::uint64_t seed,
                    std::ostream& log);

}  // namespace mr
