# Empty compiler generated dependencies file for e03_replay_equivalence.
# This may be replaced when dependencies are built.
