#include "lower_bound/constants.hpp"

#include <algorithm>

namespace mr {

namespace {
using I64 = std::int64_t;
}

MainLbParams main_lb_params(std::int32_t n, int k) {
  MainLbParams par;
  par.n = n;
  par.k = k;
  // Largest c ≤ 1/(2(k+2)) with cn integral; largest d ≤ 2/5 with dn
  // integral (§4.3).
  par.cn = n / (2 * (k + 2));
  par.dn = 2 * n / 5;
  if (par.cn < 1 || par.dn < 1) return par;

  const I64 cn = par.cn;
  const I64 dn = par.dn;
  // p = ⌊(k+1)(cn + c²n) + dn⌋ where c²n = cn²/n (exact rational).
  par.p = (I64(k + 1) * (cn * n + cn * cn)) / n + dn;
  // l = c²n²/(2p) = cn²/(2p).
  par.classes = (cn * cn) / (2 * par.p);
  par.certified_steps = par.classes * dn;

  // Constraint 1: p + l ≤ (1-c)n  ⟺  2p² + cn² ≤ 2p(n − cn).
  const bool c1 = 2 * par.p * par.p + cn * cn <= 2 * par.p * (I64(n) - cn);
  // Constraint 3 (Lemmas 3/4): l ≤ c²n  ⟺  n ≤ 2p.
  const bool c3 = I64(n) <= 2 * par.p;
  par.valid = c1 && c3 && par.classes >= 1;
  par.theorem_regime = I64(n) >= 24 * I64(k + 2) * I64(k + 2);
  return par;
}

DimOrderLbParams dim_order_lb_params(std::int32_t n, int k) {
  DimOrderLbParams par;
  par.n = n;
  par.k = k;
  par.cn = n / (2 * (k + 2));
  par.dn = 2 * n / 5;
  if (par.cn < 1 || par.dn < 1) return par;

  const I64 cn = par.cn;
  // §5: p = (k+1)cn + dn; l = (1−c)cn²/p = (n − cn)·cn / p.
  par.p = I64(k + 1) * cn + par.dn;
  const I64 l_floor = ((I64(n) - cn) * cn) / par.p;
  // Only the cn+1 easternmost columns exist as N_i-columns
  // (column (1−c)n−1+i ≤ n requires i ≤ cn+1).
  par.classes = std::min<I64>(l_floor, cn + 1);
  par.certified_steps = par.classes * par.dn;

  // Destination capacity: the N_i-column offers (1−c)n rows north of row
  // cn... the northernmost (1−c)n nodes; need p ≤ (1−c)n.
  const bool cap = par.p <= I64(n) - cn;
  par.valid = cap && par.classes >= 1;
  return par;
}

FarthestFirstLbParams farthest_first_lb_params(std::int32_t n, int k) {
  FarthestFirstLbParams par;
  par.n = n;
  par.k = k;
  // §5: c ≤ 1/(4(k+1)), d ≤ 1/2 (we take the conservative 2/5 the final
  // bound uses).
  par.cn = n / (4 * (k + 1));
  par.dn = 2 * n / 5;
  if (par.cn < 1 || par.dn < 1) return par;

  const I64 cn = par.cn;
  // p = (2k+1)cn + dn; l = cn²/p (total class packets p·l = cn·n, one per
  // node of the southernmost cn rows).
  par.p = I64(2 * k + 1) * cn + par.dn;
  const I64 l_floor = (cn * I64(n)) / par.p;
  // N_i-column is the (n+1−i)-th column; destinations sit north of row cn,
  // so at most n − 1 classes are geometrically possible.
  par.classes = std::min<I64>(l_floor, I64(n) - 1);
  par.certified_steps = par.classes * par.dn;

  const bool cap = par.p <= I64(n) - cn;  // unique rows north of row cn
  par.valid = cap && par.classes >= 1;
  return par;
}

HhLbParams hh_lb_params(std::int32_t n, int k, int h) {
  HhLbParams par;
  par.n = n;
  par.k = k;
  par.h = h;
  // §5: c ≤ h/(3(k+1+h)), d ≤ 5h/9.
  par.cn = static_cast<std::int32_t>(I64(h) * n / (3 * I64(k + 1 + h)));
  par.dn = static_cast<std::int32_t>(5 * I64(h) * n / 9);
  if (par.cn < 1 || par.dn < 1) return par;

  const I64 cn = par.cn;
  par.p = (I64(k + 1) * (cn * n + cn * cn)) / n + par.dn;
  // l = h·c²n²/(2p).
  par.classes = (I64(h) * cn * cn) / (2 * par.p);
  par.certified_steps = par.classes * par.dn;

  // Constraint 1: p + h·l ≤ h(1−c)n ⟺ 2p² + h²cn² ≤ 2p·h(n−cn).
  const bool c1 = 2 * par.p * par.p + I64(h) * h * cn * cn <=
                  2 * par.p * I64(h) * (I64(n) - cn);
  // Constraint 3: l ≤ c²n ⟺ h·n ≤ 2p.
  const bool c3 = I64(h) * n <= 2 * par.p;
  par.valid = c1 && c3 && par.classes >= 1;
  return par;
}

}  // namespace mr
