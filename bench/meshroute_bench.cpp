// meshroute_bench — the single driver for the experiment suite.
//
// Usage:
//   meshroute_bench --list                 enumerate registered scenarios
//   meshroute_bench [--run <id|label>]...  run a selection (default: all)
//   meshroute_bench --json=DIR             also write <dir>/<id>.json per
//                                          scenario (schema
//                                          meshroute-scenario/1, validated
//                                          after writing)
//   meshroute_bench --smoke                small problem sizes (same as
//                                          MESHROUTE_BENCH_SCALE=small)
//   meshroute_bench --jobs=N               worker threads for the sweep
//                                          (results are position-addressed:
//                                          output is identical for any N)
//   meshroute_bench --validate=PATH        only validate an existing
//                                          scenario JSON file
//
// Markdown goes to stdout exactly as the historical per-experiment
// binaries printed it; check verdicts follow each report as "[check]"
// lines. Exit code is 0 iff every selected scenario ran without error and
// every check passed. CSV export of each table still honours
// MESHROUTE_OUTPUT_DIR.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "scenarios.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--run <id|label>]... [--json=DIR] "
               "[--smoke] [--jobs=N] [--validate=PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mr;

  bool list = false;
  std::vector<std::string> selection;
  std::string json_dir;
  ScenarioOptions options;
  options.scale = scale_from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--run") {
      if (i + 1 >= argc) return usage(argv[0]);
      selection.push_back(argv[++i]);
    } else if (arg.rfind("--run=", 0) == 0) {
      selection.push_back(arg.substr(6));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_dir = arg.substr(7);
    } else if (arg == "--smoke") {
      options.scale = Scale::Small;
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<std::size_t>(
          std::strtoul(arg.substr(7).c_str(), nullptr, 10));
    } else if (arg.rfind("--validate=", 0) == 0) {
      const std::string path = arg.substr(11);
      std::string error;
      if (!validate_scenario_json(path, &error)) {
        std::fprintf(stderr, "validate: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
      }
      std::printf("validate: %s ok\n", path.c_str());
      return 0;
    } else {
      return usage(argv[0]);
    }
  }

  const ScenarioRegistry& registry = scenarios::builtin();

  if (list) {
    for (const ScenarioSpec* spec : registry.all())
      std::printf("%-4s %-26s %s\n", spec->id.c_str(), spec->label.c_str(),
                  spec->title.c_str());
    return 0;
  }

  std::vector<const ScenarioSpec*> specs;
  if (selection.empty()) {
    specs = registry.all();
  } else {
    for (const std::string& want : selection) {
      const ScenarioSpec* spec = registry.find(want);
      if (spec == nullptr) {
        std::fprintf(stderr, "error: no scenario named '%s' (try --list)\n",
                     want.c_str());
        return 2;
      }
      specs.push_back(spec);
    }
  }

  const std::vector<ScenarioResult> results = run_scenarios(specs, options);

  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& r = results[i];
    if (i > 0) std::printf("\n");
    std::fputs(r.to_markdown().c_str(), stdout);
    if (r.errored) {
      std::printf("[check] %s ERROR: %s\n", r.id.c_str(), r.error.c_str());
    }
    for (const ScenarioCheck& c : r.checks) {
      std::printf("[check] %s %s: %s%s%s\n", r.id.c_str(), c.name.c_str(),
                  c.pass ? "pass" : "FAIL", c.detail.empty() ? "" : " — ",
                  c.detail.c_str());
    }
    ok = ok && r.passed();
    if (!json_dir.empty()) {
      const std::string path = write_scenario_json(r, json_dir);
      if (path.empty()) {
        std::fprintf(stderr, "error: cannot write JSON for %s under %s\n",
                     r.id.c_str(), json_dir.c_str());
        ok = false;
        continue;
      }
      std::string error;
      if (!validate_scenario_json(path, &error)) {
        std::fprintf(stderr, "error: %s fails schema validation: %s\n",
                     path.c_str(), error.c_str());
        ok = false;
      }
    }
  }
  std::fflush(stdout);
  return ok ? 0 : 1;
}
