// Online deterministic grid router after Even–Medina–Patt-Shamir ("Better
// Deterministic Online Packet Routing on Grids", SPAA 2015,
// arXiv:1501.06140), the competitor baseline of E22.
//
// Structure, adapted to this engine's synchronous store-and-forward model:
//   * one-bend row-first paths — a packet crosses its source row to the
//     destination column, turns once, and crosses the column (the EMPS
//     path system restricted to a single bend);
//   * per-link buffers — the Theorem 15 per-inlink queue layout stands in
//     for the paper's constant-size link buffers;
//   * line-routing priority — on every link, packets already travelling in
//     that dimension ("continuing") outrank packets entering it (turning
//     or freshly injected), and within a tier the packet with the farthest
//     remaining distance in the dimension goes first. This is the classic
//     farthest-to-go discipline EMPS builds each grid phase from.
//
// The priority uses the actual remaining distance, not just the profitable
// mask, so the router is full-information (like farthest-first) and stays
// outside the destination-exchangeable lower-bound class: dx_minimal is
// false in the catalog. Acceptance is capacity-checked per inlink queue —
// no guaranteed-departure assumption — so the router needs no fault-mode
// fallback and runs unchanged under fault schedules and on the torus.
#pragma once

#include "sim/algorithm.hpp"
#include "sim/engine.hpp"

namespace mr {

class EmpsRouter final : public Algorithm {
 public:
  std::string name() const override { return "emps"; }
  QueueLayout queue_layout() const override { return QueueLayout::PerInlink; }

  void plan_out(Sim& e, NodeId u, OutPlan& plan) override;
  void plan_in(Sim& e, NodeId v, std::span<const Offer> offers,
               InPlan& plan) override;
};

}  // namespace mr
