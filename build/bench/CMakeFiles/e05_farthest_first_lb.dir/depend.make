# Empty dependencies file for e05_farthest_first_lb.
# This may be replaced when dependencies are built.
