#include "sim/fault.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "core/assert.hpp"
#include "topo/topology.hpp"

namespace mr {
namespace {

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool parse_dir_letter(const std::string& s, Dir* out) {
  if (s.size() != 1) return false;
  for (Dir d : kAllDirs) {
    if (s[0] == dir_name(d)[0]) {
      *out = d;
      return true;
    }
  }
  return false;
}

bool parse_int_field(const std::string& field, std::int64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

/// Parses the trailing "@<down>[-<up>]" window of one event token.
bool parse_window(const std::string& text, FaultEvent* ev,
                  std::string* error) {
  const std::size_t dash = text.find('-');
  std::int64_t down = 0, up = 0;
  if (dash == std::string::npos) {
    if (!parse_int_field(text, &down))
      return fail(error, "faults: bad down step '" + text + "'");
    ev->down_at = down;
    ev->up_at = kStepNever;
  } else {
    if (!parse_int_field(text.substr(0, dash), &down) ||
        !parse_int_field(text.substr(dash + 1), &up))
      return fail(error, "faults: bad window '" + text + "'");
    ev->down_at = down;
    ev->up_at = up;
  }
  if (ev->down_at < 1)
    return fail(error, "faults: down step must be >= 1");
  if (ev->up_at <= ev->down_at)
    return fail(error, "faults: up step must be > down step");
  return true;
}

}  // namespace

bool FaultSchedule::active_at(Step t) const {
  for (const FaultEvent& e : events)
    if (e.down_at <= t && t < e.up_at) return true;
  return false;
}

bool FaultSchedule::node_down_at(NodeId u, Step t) const {
  for (const FaultEvent& e : events)
    if (e.kind == FaultEvent::Kind::Node && e.node == u && e.down_at <= t &&
        t < e.up_at)
      return true;
  return false;
}

std::int64_t FaultSchedule::epoch_at(Step t) const {
  std::int64_t epoch = 0;
  for (const FaultEvent& e : events) {
    if (e.down_at <= t) ++epoch;
    if (e.up_at != kStepNever && e.up_at <= t) ++epoch;
  }
  return epoch;
}

bool parse_fault_schedule(const std::string& text, FaultSchedule* out,
                          std::string* error) {
  FaultSchedule schedule;
  if (text.empty() || text == "none") {
    *out = schedule;
    return true;
  }
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(start, comma - start);
    start = comma + 1;
    const std::size_t at = token.find('@');
    if (at == std::string::npos)
      return fail(error, "faults: event '" + token + "' has no @<down> window");
    const std::string head = token.substr(0, at);
    FaultEvent ev;
    if (!parse_window(token.substr(at + 1), &ev, error)) return false;
    std::int64_t node = 0;
    if (head.rfind("node:", 0) == 0) {
      ev.kind = FaultEvent::Kind::Node;
      if (!parse_int_field(head.substr(5), &node) || node < 0)
        return fail(error, "faults: bad node id in '" + token + "'");
      ev.node = static_cast<NodeId>(node);
    } else if (head.rfind("link:", 0) == 0) {
      ev.kind = FaultEvent::Kind::Link;
      const std::string rest = head.substr(5);
      const std::size_t colon = rest.find(':');
      if (colon == std::string::npos ||
          !parse_int_field(rest.substr(0, colon), &node) || node < 0 ||
          !parse_dir_letter(rest.substr(colon + 1), &ev.dir))
        return fail(error,
                    "faults: expected link:<node>:<N|E|S|W> in '" + token + "'");
      ev.node = static_cast<NodeId>(node);
    } else {
      return fail(error, "faults: event '" + token +
                             "' must start with node: or link:");
    }
    schedule.events.push_back(ev);
  }
  *out = schedule;
  return true;
}

std::string format_fault_schedule(const FaultSchedule& schedule) {
  if (schedule.empty()) return "none";
  std::string out;
  char buf[96];
  for (const FaultEvent& e : schedule.events) {
    if (!out.empty()) out += ',';
    if (e.kind == FaultEvent::Kind::Node) {
      std::snprintf(buf, sizeof buf, "node:%d@%" PRId64, e.node,
                    static_cast<std::int64_t>(e.down_at));
    } else {
      std::snprintf(buf, sizeof buf, "link:%d:%s@%" PRId64, e.node,
                    dir_name(e.dir), static_cast<std::int64_t>(e.down_at));
    }
    out += buf;
    if (e.up_at != kStepNever) {
      std::snprintf(buf, sizeof buf, "-%" PRId64,
                    static_cast<std::int64_t>(e.up_at));
      out += buf;
    }
  }
  return out;
}

std::string validate_fault_schedule(const FaultSchedule& schedule,
                                    const Topology& topo) {
  for (const FaultEvent& e : schedule.events) {
    if (e.node < 0 || e.node >= topo.num_nodes())
      return "fault event names node " + std::to_string(e.node) +
             " outside the topology (" + std::to_string(topo.num_nodes()) +
             " nodes)";
    if (e.kind == FaultEvent::Kind::Link &&
        topo.neighbor(e.node, e.dir) == kInvalidNode)
      return "fault event names missing link " + std::to_string(e.node) + ":" +
             dir_name(e.dir);
  }
  return "";
}

}  // namespace mr
