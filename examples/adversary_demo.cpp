// Adversary demo: build the Theorem 14 permutation against a chosen
// destination-exchangeable router and compare it with a random permutation
// of the same size — the measured slowdown is the paper's lower bound made
// tangible.
//
//   $ ./adversary_demo [router] [n] [k]
//     router ∈ {dimension-order, adaptive-alternate, greedy-match}
#include <cstdlib>
#include <iostream>

#include "core/table.hpp"
#include "harness/runner.hpp"
#include "lower_bound/main_construction.hpp"
#include "topo/mesh.hpp"
#include "workload/patterns.hpp"
#include "workload/permutation.hpp"

int main(int argc, char** argv) {
  using namespace mr;
  const std::string router = argc > 1 ? argv[1] : "dimension-order";
  const std::int32_t n = argc > 2 ? std::atoi(argv[2]) : 120;
  const int k = argc > 3 ? std::atoi(argv[3]) : 1;

  const MainLbParams par = main_lb_params(n, k);
  if (!par.valid) {
    std::cerr << "no valid construction for n=" << n << " k=" << k
              << " (try a larger n or smaller k)\n";
    return 1;
  }

  std::cout << "Constructing the Theorem 14 permutation against '" << router
            << "' on a " << n << "x" << n << " mesh, k=" << k << ":\n"
            << "  classes (l)  = " << par.classes << "\n"
            << "  packets/class = " << par.p << " N + " << par.p << " E\n"
            << "  certified bound = " << par.certified_steps
            << " steps (= l*dn)\n\n";

  const Mesh mesh = Mesh::square(n);
  MainConstruction construction(mesh, par);
  const auto result = construction.verify_replay(router, k);

  std::cout << "construction: " << result.construction.exchanges
            << " destination exchanges performed; "
            << result.construction.undelivered
            << " packets still undelivered at step " << par.certified_steps
            << "\n"
            << "replay check: stepwise="
            << (result.stepwise_match ? "match" : "MISMATCH")
            << ", final=" << (result.final_match ? "match" : "MISMATCH")
            << "\n\n";

  // Same router on random northeast-monotone traffic of the same size
  // (the adversarial packets are also all northeast-bound, and monotone
  // traffic cannot deadlock a central queue — a fair baseline).
  const std::size_t packets = result.construction.constructed.size();
  Workload random;
  {
    const Workload rp = northeast_only(mesh, random_permutation(mesh, 7));
    for (const Demand& d : rp) {
      if (random.size() >= packets) break;
      random.push_back(d);
    }
  }
  RunSpec spec;
  spec.width = spec.height = n;
  spec.queue_capacity = k;
  spec.algorithm = router;
  spec.max_steps = 400000;
  spec.stall_limit = 10000;
  const RunResult rnd = run_workload(spec, random);

  Table table({"workload", "packets", "steps", "delivered", "certified LB"});
  table.row()
      .add("adversarial (Thm 14)")
      .add(std::uint64_t(packets))
      .add(result.replay_total_steps)
      .add(result.replay_all_delivered ? "yes" : "no")
      .add(par.certified_steps);
  table.row()
      .add("random (same size)")
      .add(std::uint64_t(random.size()))
      .add(rnd.steps)
      .add(rnd.all_delivered ? "yes" : "no")
      .add("-");
  table.print(std::cout);

  if (rnd.all_delivered && result.replay_all_delivered) {
    std::cout << "slowdown: "
              << double(result.replay_total_steps) / double(rnd.steps)
              << "x\n";
  }
  return 0;
}
