// E17 — open-loop offered-load sweep: Bernoulli injection at increasing
// per-node rates through the warmup/measure/drain protocol, reporting the
// offered-vs-accepted throughput curve and measured-phase latency. Below
// saturation accepted tracks offered and latency stays flat; past the
// knee accepted throughput plateaus (or the run stalls) and latency
// diverges. The bounded router sustains this with hard per-inlink queues
// of size k=2 — the regime the paper's Θ(n²/k) bound says must cap
// per-node throughput at O(k/n).
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "scenarios.hpp"
#include "topo/mesh.hpp"
#include "traffic/steady_state.hpp"

namespace mr::scenarios {

void register_e17(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E17";
  spec.label = "offered-load";
  spec.title = "open-loop offered vs accepted throughput";
  spec.paper_ref = "§2/§5 dynamic-injection model; Theorem 15 (k-bounded queues)";
  spec.body = [](ScenarioReport& ctx) {
    const int n = 16;
    const int k = 2;
    const std::string algorithm = "bounded-dimension-order";
    std::vector<double> rates = {0.02, 0.05, 0.08, 0.12, 0.16,
                                 0.20, 0.25, 0.30, 0.40, 0.50};
    Step warmup = 256, measure = 1024;
    if (ctx.scale() == Scale::Small) {
      rates = {0.02, 0.08, 0.20, 0.40};
      warmup = 64;
      measure = 256;
    }
    const std::uint64_t seed = ctx.seed_or(2100);
    const std::vector<TrafficPattern> patterns = {TrafficPattern::UniformRandom,
                                                  TrafficPattern::Transpose};

    Table table({"pattern", "rate", "offered", "accepted", "accept/offer",
                 "latency p50", "latency p99", "stationary", "max queue",
                 "outcome"});
    ctx.note("open-loop Bernoulli injection, " + std::to_string(n) + "x" +
             std::to_string(n) + " mesh, " + algorithm +
             ", k=" + std::to_string(k) + ", warmup " + std::to_string(warmup) +
             " / measure " + std::to_string(measure) + " steps, seed " +
             std::to_string(seed) + ":");

    bool knee_ok = true;
    std::string knee_detail;
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const TrafficPattern pattern = patterns[pi];
      // Rates are independent runs: spread them across the worker pool.
      const auto results =
          sweep<SteadyStateResult>(rates.size(), [&](std::size_t i) {
            SteadyStateSpec run;
            run.width = run.height = n;
            run.queue_capacity = k;
            run.algorithm = algorithm;
            run.traffic.pattern = pattern;
            run.traffic.rate = rates[i];
            run.traffic.seed = seed + 17 * pi;  // same stream along a curve
            run.warmup_steps = warmup;
            run.measure_steps = measure;
            // Keyed per (pattern, rate) so --resume restores each sweep
            // point independently.
            run.checkpoint = ctx.checkpoint(
                std::string("ss_") + traffic_pattern_name(pattern) + "_r" +
                std::to_string(rates[i]));
            return run_steady_state(run);
          });
      double first_ratio = -1, last_ratio = -1;
      for (std::size_t i = 0; i < rates.size(); ++i) {
        const SteadyStateResult& r = results[i];
        const double ratio =
            r.offered_rate > 0 ? r.accepted_rate / r.offered_rate : 1.0;
        if (first_ratio < 0) first_ratio = ratio;
        last_ratio = ratio;
        table.row()
            .add(traffic_pattern_name(pattern))
            .add(rates[i], 3)
            .add(r.offered_rate, 4)
            .add(r.accepted_rate, 4)
            .add(ratio, 3)
            .add(static_cast<std::int64_t>(r.latency.p50))
            .add(static_cast<std::int64_t>(r.latency.p99))
            .add(r.stationary ? "yes" : "no")
            .add(r.max_queue)
            .add(r.stalled    ? "STALLED"
                 : r.drained  ? "drained"
                              : "backlog");
      }
      // The knee: the curve starts load-sustaining and ends saturated.
      const bool sustained_low = first_ratio >= 0.95;
      const bool saturated_high = last_ratio < 0.95;
      if (!sustained_low || !saturated_high) {
        knee_ok = false;
        knee_detail += std::string(traffic_pattern_name(pattern)) +
                       ": first ratio " + std::to_string(first_ratio) +
                       ", last ratio " + std::to_string(last_ratio) + "; ";
      }
    }
    ctx.table(table);
    ctx.note(
        "accept/offer ~1 below the knee, then accepted throughput "
        "plateaus while offered keeps growing: the hard k-bounded queues "
        "cap sustainable per-node injection well below 1 packet/step, as "
        "the Theorem 15 Θ(n²/k) routing time implies (≈ k/n per node).");
    ctx.check("throughput-knee", knee_ok, knee_detail);

    // One mid-curve run through the harness runner (RunHooks::traffic), so
    // the record — and --telemetry artefacts — cover the open-loop path.
    TrafficSpec traffic;
    traffic.pattern = TrafficPattern::UniformRandom;
    traffic.rate = 0.12;
    traffic.seed = seed;
    const Mesh mesh = Mesh::square(n);
    BernoulliSource source(mesh, traffic);
    RunSpec run;
    run.width = run.height = n;
    run.queue_capacity = k;
    run.algorithm = algorithm;
    run.traffic_steps = warmup + measure;
    run.stall_limit = 4096;
    RunHooks hooks;
    hooks.traffic = &source;
    const RunResult r = ctx.run("open_loop_uniform_r0.12", run, {}, hooks);
    ctx.check("open-loop-run-drained", r.all_delivered && !r.stalled,
              "delivered " + std::to_string(r.delivered) + "/" +
                  std::to_string(r.packets));
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
