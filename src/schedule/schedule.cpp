#include "schedule/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/assert.hpp"
#include "core/rng.hpp"

namespace mr {

namespace {

/// Key of one (directed link, step) reservation slot.
std::uint64_t slot_key(std::size_t link, Step t) {
  return static_cast<std::uint64_t>(link) << 32 |
         static_cast<std::uint64_t>(t);
}

/// Key of one (node, step) residency cell.
std::uint64_t cell_key(NodeId u, Step t) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32 |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(t));
}

Schedule schedule_shell(const PathSet& paths) {
  Schedule s;
  s.congestion = paths.congestion;
  s.dilation = paths.dilation;
  s.packets.resize(paths.paths.size());
  for (std::size_t i = 0; i < paths.paths.size(); ++i)
    s.packets[i].path = paths.paths[i];
  return s;
}

void finalize_makespan(Schedule& s) {
  s.makespan = 0;
  for (const PacketSchedule& p : s.packets)
    s.makespan = std::max(s.makespan, p.finish());
}

}  // namespace

Schedule random_delay_schedule(const PathSet& paths, std::uint64_t seed) {
  Schedule s = schedule_shell(paths);
  Rng rng(seed);
  // Seeded initial delays in [0, C), drawn in demand order so the
  // timetable is a pure function of (paths, seed).
  std::vector<Step> delay(s.packets.size(), 0);
  if (paths.congestion > 1)
    for (Step& d : delay)
      d = static_cast<Step>(
          rng.next_below(static_cast<std::uint64_t>(paths.congestion)));
  // Reservation order: by delay, then demand index — the packets that
  // start earliest claim their slots first.
  std::vector<std::size_t> order(s.packets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(
      order.begin(), order.end(),
      [&](std::size_t a, std::size_t b) { return delay[a] < delay[b]; });
  std::unordered_set<std::uint64_t> reserved;
  for (const std::size_t i : order) {
    PacketSchedule& p = s.packets[i];
    p.depart.reserve(p.path.hops());
    Step t = delay[i];  // hop h executes no earlier than step t + 1
    for (std::size_t h = 0; h < p.path.hops(); ++h) {
      const std::size_t link = link_index(p.path.nodes[h], p.path.dirs[h]);
      ++t;
      while (!reserved.insert(slot_key(link, t)).second) ++t;
      p.depart.push_back(t);
    }
  }
  finalize_makespan(s);
  return s;
}

Schedule greedy_schedule(const PathSet& paths) {
  Schedule s = schedule_shell(paths);
  std::vector<std::size_t> hop(s.packets.size(), 0);
  std::size_t active = 0;
  for (const PacketSchedule& p : s.packets)
    if (p.path.hops() > 0) ++active;
  // Per step, every waiting packet bids for its next link; each link goes
  // to the bidder with the most remaining hops (ties to the lower demand
  // index). At least one packet advances per step, so this terminates.
  std::unordered_map<std::size_t, std::size_t> grant;  // link -> packet
  for (Step t = 1; active > 0; ++t) {
    grant.clear();
    for (std::size_t i = 0; i < s.packets.size(); ++i) {
      const PacketPath& path = s.packets[i].path;
      if (hop[i] >= path.hops()) continue;
      const std::size_t link =
          link_index(path.nodes[hop[i]], path.dirs[hop[i]]);
      const auto [it, fresh] = grant.try_emplace(link, i);
      if (fresh) continue;
      const std::size_t held = it->second;
      if (path.hops() - hop[i] >
          s.packets[held].path.hops() - hop[held])
        it->second = i;
    }
    for (const auto& [link, i] : grant) {
      s.packets[i].depart.push_back(t);
      if (++hop[i] == s.packets[i].path.hops()) --active;
    }
  }
  finalize_makespan(s);
  return s;
}

std::string validate_schedule(const Topology& topo, const Schedule& s) {
  std::unordered_set<std::uint64_t> reserved;
  for (std::size_t i = 0; i < s.packets.size(); ++i) {
    const PacketSchedule& p = s.packets[i];
    std::ostringstream err;
    err << "packet " << i << ": ";
    if (p.path.nodes.empty()) return err.str() + "empty path";
    if (p.path.nodes.size() != p.path.dirs.size() + 1 ||
        p.depart.size() != p.path.dirs.size()) {
      err << "shape mismatch: " << p.path.nodes.size() << " nodes, "
          << p.path.dirs.size() << " dirs, " << p.depart.size()
          << " departures";
      return err.str();
    }
    for (std::size_t h = 0; h < p.path.hops(); ++h) {
      if (topo.neighbor(p.path.nodes[h], p.path.dirs[h]) !=
          p.path.nodes[h + 1]) {
        err << "hop " << h << " (" << p.path.nodes[h] << " "
            << dir_name(p.path.dirs[h]) << ") does not reach "
            << p.path.nodes[h + 1];
        return err.str();
      }
      if (p.depart[h] < 1 || (h > 0 && p.depart[h] <= p.depart[h - 1])) {
        err << "hop " << h << " departs at step " << p.depart[h]
            << ", not strictly after "
            << (h > 0 ? p.depart[h - 1] : Step{0});
        return err.str();
      }
      const std::size_t link = link_index(p.path.nodes[h], p.path.dirs[h]);
      if (!reserved.insert(slot_key(link, p.depart[h])).second) {
        err << "link (" << p.path.nodes[h] << " "
            << dir_name(p.path.dirs[h]) << ") double-booked at step "
            << p.depart[h];
        return err.str();
      }
    }
  }
  return "";
}

int required_queue_capacity(const Schedule& s) {
  // End-of-step residency: a packet sits at intermediate node j at the
  // end of steps depart[j-1] .. depart[j]-1. It is injected at its
  // source at the start of its first departure step (and leaves that
  // same step), and is delivered — hence gone — the step it reaches its
  // destination.
  std::unordered_map<std::uint64_t, int> resident;
  std::unordered_map<std::uint64_t, int> injected;
  int peak = s.packets.empty() ? 0 : 1;
  for (const PacketSchedule& p : s.packets) {
    ++injected[cell_key(p.path.nodes.front(), p.start())];
    for (std::size_t j = 1; j + 1 < p.path.nodes.size(); ++j)
      for (Step t = p.depart[j - 1]; t < p.depart[j]; ++t)
        peak = std::max(peak, ++resident[cell_key(p.path.nodes[j], t)]);
  }
  // Start-of-step occupancy at (u, t) is end-of-step residency at
  // (u, t-1) plus fresh injections at (u, t); both must fit so the
  // engine never parks an injection in its external waiting buffer.
  for (const auto& [key, count] : injected) {
    const auto it = resident.find(key - (std::uint64_t{1}));
    peak = std::max(peak, count + (it == resident.end() ? 0 : it->second));
  }
  return peak;
}

}  // namespace mr
