// White-box tests of the exchange machinery: that EX1–EX4 fire exactly at
// the §3 trigger conditions, that exchanged packets keep every field other
// than the destination, and that the constructed permutation remains
// one-to-one.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "topo/mesh.hpp"

namespace mr {
namespace {

TEST(Exchange, PreservesEverythingButDestination) {
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstruction construction(mesh, par);
  const Workload before = construction.placement();
  const auto result = construction.run_construction("dimension-order", 1);
  ASSERT_GT(result.exchanges, 0u);
  ASSERT_EQ(before.size(), result.constructed.size());
  // Sources are untouched; destinations form the same multiset.
  std::multiset<NodeId> dests_before, dests_after;
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].source, result.constructed[i].source);
    EXPECT_EQ(before[i].injected_at, result.constructed[i].injected_at);
    dests_before.insert(before[i].dest);
    dests_after.insert(result.constructed[i].dest);
  }
  EXPECT_EQ(dests_before, dests_after);
  // Still a partial permutation.
  EXPECT_TRUE(is_partial_permutation(mesh, result.constructed));
}

TEST(Exchange, SomePacketsActuallySwapped) {
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstruction construction(mesh, par);
  const Workload before = construction.placement();
  const auto result = construction.run_construction("dimension-order", 1);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i].dest != result.constructed[i].dest) ++changed;
  // Every exchange changes two packets; later exchanges can restore some,
  // but with 10+ exchanges something must differ.
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, 2 * result.exchanges);
}

TEST(Exchange, ClassCountsInvariantUnderExchanges) {
  // Exchanges permute destinations among class packets, so the per-class
  // census (p packets per class and type) is invariant.
  const MainLbParams par = main_lb_params(120, 1);
  const Mesh mesh = Mesh::square(120);
  MainConstruction construction(mesh, par);
  const auto result = construction.run_construction("greedy-match", 1);
  const MainGeometry& geo = construction.geometry();
  std::map<std::pair<int, std::int64_t>, std::int64_t> census;
  for (const Demand& d : result.constructed) {
    const PacketClass cls =
        geo.classify(mesh.coord_of(d.source), mesh.coord_of(d.dest));
    if (cls.type == ClassType::None) continue;
    ++census[{static_cast<int>(cls.type), cls.i}];
  }
  for (std::int64_t i = 1; i <= par.classes; ++i) {
    EXPECT_EQ((census[{static_cast<int>(ClassType::N), i}]), par.p);
    EXPECT_EQ((census[{static_cast<int>(ClassType::E), i}]), par.p);
  }
}

TEST(Exchange, NoExchangesAfterAllWindowsClose) {
  // Rebuild the run and count exchanges per step through a custom
  // observer: none may occur after step ⌊l⌋·dn... within the run they are
  // definitionally bounded by it; instead check the exchange count is
  // stable across the last window by re-running with fewer steps.
  const MainLbParams par = main_lb_params(60, 1);
  ASSERT_EQ(par.classes, 1);  // single window: exchanges only in (0, dn]
  const Mesh mesh = Mesh::square(60);
  MainConstruction c1(mesh, par);
  const auto full = c1.run_construction("dimension-order", 1);
  // With one class, every exchange happened at t <= dn = certified steps.
  EXPECT_GT(full.exchanges, 0u);
  EXPECT_EQ(full.steps, par.certified_steps);
}

TEST(Exchange, InvariantCheckerCanBeDisabled) {
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstructionOptions options;
  options.check_invariants = false;
  MainConstruction construction(mesh, par, options);
  const auto result = construction.run_construction("dimension-order", 1);
  EXPECT_GT(result.undelivered, 0u);
  EXPECT_EQ(result.max_escapes_per_step, 0);  // checker off: no data
}

TEST(Exchange, DifferentAlgorithmsDifferentPermutations) {
  // The construction is algorithm-specific: different routers usually get
  // different constructed permutations.
  const MainLbParams par = main_lb_params(60, 1);
  const Mesh mesh = Mesh::square(60);
  MainConstruction c1(mesh, par);
  MainConstruction c2(mesh, par);
  const auto a = c1.run_construction("dimension-order", 1);
  const auto b = c2.run_construction("adaptive-alternate", 1);
  EXPECT_NE(a.constructed, b.constructed);
}

}  // namespace
}  // namespace mr
