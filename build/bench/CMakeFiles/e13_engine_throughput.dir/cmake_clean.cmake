file(REMOVE_RECURSE
  "CMakeFiles/e13_engine_throughput.dir/e13_engine_throughput.cpp.o"
  "CMakeFiles/e13_engine_throughput.dir/e13_engine_throughput.cpp.o.d"
  "e13_engine_throughput"
  "e13_engine_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_engine_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
