#include "workload/lk.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "core/assert.hpp"
#include "core/rng.hpp"

namespace mr {

namespace {

/// Slot pool: every node of `nodes` repeated `degree` times, shuffled.
std::vector<NodeId> shuffled_slots(const std::vector<NodeId>& nodes,
                                   int degree, Rng& rng) {
  std::vector<NodeId> slots;
  slots.reserve(nodes.size() * static_cast<std::size_t>(degree));
  for (int copy = 0; copy < degree; ++copy)
    slots.insert(slots.end(), nodes.begin(), nodes.end());
  shuffle(slots, rng);
  return slots;
}

}  // namespace

bool parse_lk_spec(const std::string& text, LkSpec* out, std::string* error) {
  LkSpec spec;
  std::istringstream is(text);
  std::string part;
  std::vector<std::string> parts;
  while (std::getline(is, part, ':')) parts.push_back(part);
  if (parts.size() < 3 || parts.size() > 4) {
    if (error) *error = "lk spec needs variant:l:k[:seed], got '" + text + "'";
    return false;
  }
  spec.variant = parts[0];
  if (spec.variant != "uniform" && spec.variant != "clustered" &&
      spec.variant != "worst-case") {
    if (error) *error = "unknown lk variant '" + spec.variant + "'";
    return false;
  }
  char* end = nullptr;
  spec.l = static_cast<int>(std::strtol(parts[1].c_str(), &end, 10));
  if (end == nullptr || *end != '\0' || spec.l < 1) {
    if (error) *error = "lk spec needs l >= 1, got '" + parts[1] + "'";
    return false;
  }
  spec.k = static_cast<int>(std::strtol(parts[2].c_str(), &end, 10));
  if (end == nullptr || *end != '\0' || spec.k < 1) {
    if (error) *error = "lk spec needs k >= 1, got '" + parts[2] + "'";
    return false;
  }
  if (parts.size() == 4) {
    spec.seed = std::strtoull(parts[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      if (error) *error = "malformed lk seed '" + parts[3] + "'";
      return false;
    }
  }
  *out = spec;
  return true;
}

std::string format_lk_spec(const LkSpec& spec) {
  std::ostringstream os;
  os << spec.variant << ':' << spec.l << ':' << spec.k << ':' << spec.seed;
  return os.str();
}

Workload lk_uniform(const Topology& mesh, int l, int k, std::uint64_t seed) {
  MR_REQUIRE(l >= 1 && k >= 1);
  Rng rng(seed);
  const int sends = std::min(l, k);
  const std::vector<NodeId> nodes = mesh.all_nodes();
  const std::vector<NodeId> slots = shuffled_slots(nodes, k, rng);
  Workload w;
  w.reserve(nodes.size() * static_cast<std::size_t>(sends));
  std::size_t next_slot = 0;
  for (const NodeId src : nodes)
    for (int i = 0; i < sends; ++i)
      w.push_back(Demand{src, slots[next_slot++], 0});
  return w;
}

Workload lk_clustered(const Topology& mesh, int l, int k, std::uint64_t seed) {
  MR_REQUIRE(l >= 1 && k >= 1);
  Rng rng(seed);
  const std::int32_t bw = (mesh.width() + 1) / 2;
  const std::int32_t bh = (mesh.height() + 1) / 2;
  std::vector<NodeId> sources, dests;
  for (std::int32_t r = 0; r < bh; ++r)
    for (std::int32_t c = 0; c < bw; ++c) {
      sources.push_back(mesh.id_of(c, r));
      dests.push_back(mesh.id_of(mesh.width() - 1 - c, mesh.height() - 1 - r));
    }
  std::vector<NodeId> send_slots = shuffled_slots(sources, l, rng);
  std::vector<NodeId> recv_slots = shuffled_slots(dests, k, rng);
  const std::size_t m = std::min(send_slots.size(), recv_slots.size());
  Workload w;
  w.reserve(m);
  for (std::size_t i = 0; i < m; ++i)
    w.push_back(Demand{send_slots[i], recv_slots[i], 0});
  std::sort(w.begin(), w.end(), [](const Demand& a, const Demand& b) {
    return a.source != b.source ? a.source < b.source : a.dest < b.dest;
  });
  return w;
}

Workload lk_worst_case(const Topology& mesh, int l, int k) {
  MR_REQUIRE(l >= 1 && k >= 1);
  const int copies = std::min(l, k);
  Workload w;
  for (std::int32_t r = 0; r < mesh.height(); ++r)
    for (std::int32_t c = 0; c < mesh.width() / 2; ++c)
      for (int i = 0; i < copies; ++i)
        w.push_back(Demand{mesh.id_of(c, r),
                           mesh.id_of(mesh.width() - 1 - c, r), 0});
  return w;
}

Workload make_lk_workload(const Topology& mesh, const LkSpec& spec) {
  if (spec.variant == "uniform")
    return lk_uniform(mesh, spec.l, spec.k, spec.seed);
  if (spec.variant == "clustered")
    return lk_clustered(mesh, spec.l, spec.k, spec.seed);
  MR_REQUIRE_MSG(spec.variant == "worst-case",
                 "unknown lk variant '" << spec.variant << "'");
  return lk_worst_case(mesh, spec.l, spec.k);
}

bool is_lk(const Topology& mesh, const Workload& w, int l, int k) {
  std::vector<int> sends(static_cast<std::size_t>(mesh.num_nodes()), 0);
  std::vector<int> receives(static_cast<std::size_t>(mesh.num_nodes()), 0);
  for (const Demand& d : w) {
    if (++sends[static_cast<std::size_t>(d.source)] > l) return false;
    if (++receives[static_cast<std::size_t>(d.dest)] > k) return false;
  }
  return true;
}

}  // namespace mr
