
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e01_main_lower_bound.cpp" "bench/CMakeFiles/e01_main_lower_bound.dir/e01_main_lower_bound.cpp.o" "gcc" "bench/CMakeFiles/e01_main_lower_bound.dir/e01_main_lower_bound.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/mr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lower_bound/CMakeFiles/mr_lower_bound.dir/DependInfo.cmake"
  "/root/repo/build/src/fastroute/CMakeFiles/mr_fastroute.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/mr_harness.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
