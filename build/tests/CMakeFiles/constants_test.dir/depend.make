# Empty dependencies file for constants_test.
# This may be replaced when dependencies are built.
