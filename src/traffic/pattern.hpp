// Spatial traffic patterns for open-loop (continuous-injection) workloads:
// the classic interconnect-simulator set — uniform random, transpose,
// bit-complement, tornado and hotspot — mapping an injecting terminal to a
// destination terminal. Deterministic patterns are pure coordinate maps;
// the stochastic ones (uniform, hotspot) draw from the caller's Rng, so a
// fixed seed reproduces the exact stream.
//
// Patterns operate in TERMINAL space (Topology's injection/ejection
// endpoints). On unconcentrated topologies terminals coincide with
// routers, so the maps reduce exactly to the classic per-node forms. On a
// concentrated mesh the deterministic maps act on the router coordinate
// and carry the terminal slot along (transpose/tornado preserve the slot,
// bit-complement mirrors it), matching booksim2's cmesh convention that
// the pattern permutes terminals, not routers.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/types.hpp"
#include "topo/topology.hpp"

namespace mr {

enum class TrafficPattern : std::uint8_t {
  UniformRandom,  ///< destination uniform over all other terminals
  Transpose,      ///< (c, r) -> (r, c); diagonal terminals do not inject
  BitComplement,  ///< (c, r) -> (W-1-c, H-1-r); a fixed point never injects
  Tornado,        ///< (c, r) -> (c + floor((W-1)/2) mod W, r + floor((H-1)/2) mod H)
  Hotspot,        ///< with prob. hotspot_fraction the sink, else uniform
};

const char* traffic_pattern_name(TrafficPattern p);
/// Parses a pattern name ("uniform", "transpose", "bitcomp", "tornado",
/// "hotspot"); returns false on unknown names.
bool parse_traffic_pattern(const std::string& name, TrafficPattern* out);
const std::vector<TrafficPattern>& all_traffic_patterns();

/// One open-loop traffic configuration: spatial pattern + per-terminal
/// injection rate + stream seed.
struct TrafficSpec {
  TrafficPattern pattern = TrafficPattern::UniformRandom;
  /// Per-terminal per-step injection probability (offered load), in [0, 1].
  double rate = 0.1;
  std::uint64_t seed = 1;
  /// Hotspot only: probability an injected packet targets the sink.
  double hotspot_fraction = 0.2;
  /// Hotspot only: the sink terminal; kInvalidNode = slot 0 of the center
  /// router.
  NodeId hotspot_sink = kInvalidNode;
};

/// Resolves the hotspot sink terminal of `spec` on `topo` (the configured
/// terminal, or slot 0 of the center router when unset).
NodeId hotspot_sink(const Topology& topo, const TrafficSpec& spec);

/// Destination terminal for a packet injected at terminal `src`, or
/// kInvalidNode when the pattern gives this source nothing to send
/// (transpose diagonal, bit-complement fixed point, zero tornado shift).
/// Never returns `src` itself, but may return a sibling terminal on the
/// same router (the demand is then delivered at injection). Only the
/// stochastic patterns consume `rng`.
NodeId traffic_destination(const Topology& topo, const TrafficSpec& spec,
                           NodeId src, Rng& rng);

}  // namespace mr
