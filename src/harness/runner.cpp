#include "harness/runner.hpp"

#include <optional>

#include "routing/registry.hpp"
#include "telemetry/export.hpp"
#include "topo/mesh.hpp"
#include "topo/registry.hpp"
#include "traffic/pump.hpp"

namespace mr {

Step default_step_budget(std::int32_t width, std::int32_t height, int k) {
  const std::int64_t n = std::max(width, height);
  // Theorem 15 upper bound is O(n²/k + n); §6 runs in ≤ 972n. A budget of
  // 8·n²/k + 4000·n covers every algorithm in the suite with slack.
  return 8 * n * n / std::max(1, k) + 4000 * n;
}

RunResult run_workload(const RunSpec& spec, const Workload& workload) {
  return run_workload(spec, workload, RunHooks{});
}

RunResult run_workload(const RunSpec& spec, const Workload& workload,
                       const RunHooks& hooks) {
  std::unique_ptr<Topology> topo;
  if (spec.topology.empty()) {
    topo = std::make_unique<Mesh>(spec.width, spec.height, spec.torus);
  } else {
    TopoSpec ts = parse_topology_spec(spec.topology);
    ts.width = spec.width;
    ts.height = spec.height;
    topo = make_topology(ts);
  }
  const bool open_loop = hooks.traffic != nullptr;
  Engine::Config config;
  config.queue_capacity = spec.queue_capacity;
  config.stall_limit = spec.stall_limit;
  config.stall_counts_pending_injections = open_loop;
  // Phase (b) exchanges are inherently sequential, so an interceptor run
  // falls back to the sequential engine (results are identical either way;
  // only wall-clock differs). The fallback is surfaced through
  // RunResult::engine_mode rather than silently dropped.
  const bool wanted_sharded = spec.engine_shards > 1 || spec.engine_threads > 1;
  const bool fallback = hooks.interceptor != nullptr && wanted_sharded;
  config.shards = hooks.interceptor != nullptr ? 1 : spec.engine_shards;
  config.threads = hooks.interceptor != nullptr ? 1 : spec.engine_threads;
  Engine engine(*topo, config,
                [&] { return make_algorithm(spec.algorithm); });
  for (const Demand& d : workload)
    engine.add_packet(d.source, d.dest, d.injected_at);

  std::optional<TrafficPump> pump;
  if (open_loop) {
    MR_REQUIRE_MSG(spec.traffic_steps >= 1,
                   "open-loop run needs traffic_steps >= 1");
    pump.emplace(engine, *hooks.traffic, spec.traffic_steps,
                 spec.traffic_ahead);
  }

  if (hooks.interceptor != nullptr) engine.set_interceptor(hooks.interceptor);
  MetricsObserver metrics;
  engine.add_observer(&metrics);

  const TelemetrySpec& telemetry = spec.telemetry;
  std::optional<TelemetryCollector> collector;
  if (telemetry.series || !telemetry.export_dir.empty()) {
    TelemetryOptions options;
    options.series_capacity = telemetry.series_capacity;
    options.sample_every = telemetry.sample_every;
    collector.emplace(options);
    engine.add_observer(&*collector);
  }
  if (telemetry.profile) engine.set_phase_profiling(true);

  for (Observer* o : hooks.observers) engine.add_observer(o);
  for (StepObserver* o : hooks.step_observers) engine.add_observer(o);
  if (pump) pump->prime();
  engine.prepare();

  Step budget = spec.max_steps > 0
                    ? spec.max_steps
                    : default_step_budget(spec.width, spec.height,
                                          spec.queue_capacity);
  if (pump && spec.max_steps == 0) budget += spec.traffic_steps;
  RunResult result;
  result.steps =
      pump ? run_to_drain(engine, *pump, budget) : engine.run(budget);
  result.all_delivered = engine.all_delivered();
  result.stalled = engine.stalled();
  result.packets = engine.num_packets();
  result.delivered = engine.delivered_count();
  result.max_queue = engine.max_occupancy_seen();
  result.total_moves = engine.total_moves();
  result.latency = metrics.latency_summary();
  result.engine_mode = engine.shard_count() > 1 ? "sharded"
                       : fallback              ? "sequential-fallback"
                                               : "sequential";
  if (telemetry.profile) result.phase_profile = engine.phase_profile();

  if (collector && !telemetry.export_dir.empty()) {
    TelemetryRunInfo info;
    info.run = telemetry.slug.empty() ? spec.algorithm : telemetry.slug;
    info.algorithm = spec.algorithm;
    info.width = spec.width;
    info.height = spec.height;
    info.torus = topo->is_torus();
    info.queue_capacity = spec.queue_capacity;
    info.layout = engine.queue_layout();
    info.steps = result.steps;
    info.packets = result.packets;
    info.delivered = result.delivered;
    info.stalled = result.stalled;
    result.telemetry_path = write_telemetry(
        *collector, info,
        result.phase_profile ? &*result.phase_profile : nullptr,
        telemetry.export_dir);
  }
  return result;
}

}  // namespace mr
