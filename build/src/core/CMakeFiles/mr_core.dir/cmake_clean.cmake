file(REMOVE_RECURSE
  "CMakeFiles/mr_core.dir/parallel.cpp.o"
  "CMakeFiles/mr_core.dir/parallel.cpp.o.d"
  "CMakeFiles/mr_core.dir/stats.cpp.o"
  "CMakeFiles/mr_core.dir/stats.cpp.o.d"
  "CMakeFiles/mr_core.dir/table.cpp.o"
  "CMakeFiles/mr_core.dir/table.cpp.o.d"
  "libmr_core.a"
  "libmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
