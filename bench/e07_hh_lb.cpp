// E07 — §5 "h-h Routing Problems": the Ω(h³n²/(k+h)²) extension. Each
// 1-box node originates h packets; when h > k the surplus waits outside
// the network and is injected as space frees (the §5 dynamic setting).
#include "lower_bound/main_construction.hpp"
#include "routing/registry.hpp"
#include "scenarios.hpp"

namespace mr::scenarios {

void register_e07(ScenarioRegistry& registry) {
  ScenarioSpec spec;
  spec.id = "E07";
  spec.label = "hh-lb";
  spec.title = "h-h routing lower bound";
  spec.paper_ref = "§5 'h-h Routing Problems'";
  spec.body = [](ScenarioReport& ctx) {
    const int n = ctx.scale() == Scale::Small ? 120 : 216;
    std::vector<std::pair<int, int>> cases = {{1, 2}, {1, 3}, {1, 4},
                                              {2, 2}, {2, 4}};  // (k, h)
    if (n >= 216) cases.insert(cases.begin(), {1, 1});

    Table table({"n", "k", "h", "classes", "certified", "measured",
                 "cert*(k+h)^2/(h^3 n^2)", "replay ok"});
    bool all_ok = true;
    for (const auto& [k, h] : cases) {
      const HhLbParams par = hh_lb_params(n, k, h);
      if (!par.valid) continue;
      const Mesh mesh = Mesh::square(n);
      MainConstruction construction(mesh, par);
      const auto r = construction.verify_replay("dimension-order", k);
      const double scale_factor =
          double(h) * h * h * double(n) * n / ((double(k) + h) * (k + h));
      const bool ok = r.stepwise_match && r.final_match &&
                      r.undelivered_at_certified >= 1;
      all_ok = all_ok && ok;
      table.row()
          .add(n)
          .add(k)
          .add(h)
          .add(par.classes)
          .add(par.certified_steps)
          .add(r.replay_total_steps)
          .add(double(par.certified_steps) / scale_factor, 5)
          .add(ok ? "yes" : "NO");
    }
    ctx.table(table);
    ctx.note(
        "The normalised column staying roughly flat across h tracks the "
        "Omega(h^3 n^2/(k+h)^2) shape; h > k rows exercise dynamic "
        "injection (packets wait outside the network for queue space).");
    ctx.check("lemma12-replay-with-dynamic-injection", all_ok);
  };
  registry.add(std::move(spec));
}

}  // namespace mr::scenarios
