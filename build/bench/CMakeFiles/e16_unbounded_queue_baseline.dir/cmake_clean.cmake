file(REMOVE_RECURSE
  "CMakeFiles/e16_unbounded_queue_baseline.dir/e16_unbounded_queue_baseline.cpp.o"
  "CMakeFiles/e16_unbounded_queue_baseline.dir/e16_unbounded_queue_baseline.cpp.o.d"
  "e16_unbounded_queue_baseline"
  "e16_unbounded_queue_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e16_unbounded_queue_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
