// Step-boundary injection pump: feeds a TrafficSource into the engine's
// dynamic-injection path with a bounded generation-ahead window.
//
// The pump emits the source one step at a time, always keeping `ahead`
// steps of future-dated injections scheduled (Engine::pump_packet). The
// engine consumes them through the exact same injection buffer that
// pre-scheduled add_packet demands use, so an open-loop run is
// bit-identical to pre-materializing the whole stream up front — the
// window only bounds memory. When the network goes idle mid-stream (low
// rates), the pump fast-forwards emission until something is pending
// again so the clock can keep advancing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "traffic/source.hpp"

namespace mr {

/// Snapshottable (sim/snapshot.hpp): the pump's blob carries the emission
/// window (emitted-through step, primed flag) and the offered-load
/// counters, but NOT the engine or source — restore those from the same
/// checkpoint separately, then restore_state() the pump constructed over
/// them. Do not call prime() on a restored pump.
class TrafficPump : public Snapshottable {
 public:
  /// The source will be emitted for steps 1..inject_steps; `ahead` >= 1 is
  /// the generation-ahead window.
  TrafficPump(Engine& engine, TrafficSource& source, Step inject_steps,
              Step ahead);

  /// Emits the initial window via Engine::add_packet. Must be called
  /// exactly once, before engine.prepare().
  void prime();

  /// Tops the window up to engine.step() + ahead (capped at inject_steps)
  /// via Engine::pump_packet; call between steps. If the engine has fully
  /// drained while the stream still has steps left, fast-forwards emission
  /// until at least one future injection is pending (or the stream ends).
  void advance();

  /// True once all inject_steps steps have been emitted.
  bool exhausted() const { return emitted_ >= inject_steps_; }
  Step emitted_through() const { return emitted_; }
  Step inject_steps() const { return inject_steps_; }

  /// Total demands emitted so far (offered load).
  std::int64_t offered() const { return offered_; }
  /// Demands emitted with injection step in [first, last].
  std::int64_t offered_between(Step first, Step last) const;

  std::string save_state() const override;
  void restore_state(const std::string& blob) override;

 private:
  void emit_one(bool pre_prepare);

  Engine& engine_;
  TrafficSource& source_;
  Step inject_steps_;
  Step ahead_;
  Step emitted_ = 0;
  bool primed_ = false;
  std::int64_t offered_ = 0;
  std::vector<std::int32_t> offered_per_step_;  ///< index = step - 1
  std::vector<Demand> buf_;
};

/// Drives an open-loop run to drain: alternates pump.advance() and
/// engine.step_once() until the stream is exhausted and every packet is
/// delivered, the engine stalls, or max_steps executed. The engine should
/// run with Config::stall_counts_pending_injections so a deadlock trips
/// the stall limit despite the pump's pending window. Returns the last
/// executed step.
Step run_to_drain(Engine& engine, TrafficPump& pump, Step max_steps);

}  // namespace mr
