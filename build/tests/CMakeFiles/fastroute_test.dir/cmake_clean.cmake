file(REMOVE_RECURSE
  "CMakeFiles/fastroute_test.dir/fastroute_test.cpp.o"
  "CMakeFiles/fastroute_test.dir/fastroute_test.cpp.o.d"
  "fastroute_test"
  "fastroute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastroute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
