# Empty compiler generated dependencies file for e14_tiling_cover.
# This may be replaced when dependencies are built.
