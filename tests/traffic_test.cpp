// Open-loop traffic subsystem: generator determinism and rate accuracy,
// pattern destination laws, pump/batch bit-equivalence, steady-state
// phase-accounting invariants, and the saturation search.
#include <gtest/gtest.h>

#include <cmath>

#include "routing/registry.hpp"
#include "sim/engine.hpp"
#include "topo/mesh.hpp"
#include "traffic/pattern.hpp"
#include "traffic/pump.hpp"
#include "traffic/saturation.hpp"
#include "traffic/source.hpp"
#include "traffic/steady_state.hpp"

namespace mr {
namespace {

TrafficSpec spec_of(TrafficPattern pattern, double rate, std::uint64_t seed) {
  TrafficSpec s;
  s.pattern = pattern;
  s.rate = rate;
  s.seed = seed;
  return s;
}

TEST(TrafficPattern, NamesRoundTrip) {
  for (const TrafficPattern p : all_traffic_patterns()) {
    TrafficPattern parsed;
    ASSERT_TRUE(parse_traffic_pattern(traffic_pattern_name(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  TrafficPattern parsed;
  EXPECT_FALSE(parse_traffic_pattern("no-such-pattern", &parsed));
}

TEST(TrafficSource, DeterministicUnderSeed) {
  const Mesh mesh = Mesh::square(8);
  for (const TrafficPattern p : all_traffic_patterns()) {
    BernoulliSource a(mesh, spec_of(p, 0.3, 42));
    BernoulliSource b(mesh, spec_of(p, 0.3, 42));
    const Workload wa = materialize_traffic(a, 1, 50);
    const Workload wb = materialize_traffic(b, 1, 50);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_EQ(wa[i].source, wb[i].source);
      EXPECT_EQ(wa[i].dest, wb[i].dest);
      EXPECT_EQ(wa[i].injected_at, wb[i].injected_at);
    }
    BernoulliSource c(mesh, spec_of(p, 0.3, 43));
    const Workload wc = materialize_traffic(c, 1, 50);
    bool differs = wc.size() != wa.size();
    for (std::size_t i = 0; !differs && i < wa.size(); ++i)
      differs = wa[i].source != wc[i].source || wa[i].dest != wc[i].dest;
    EXPECT_TRUE(differs) << traffic_pattern_name(p)
                         << ": seed change left the stream identical";
  }
}

TEST(TrafficSource, RateAccuracy) {
  // Offered load over a long window concentrates near rate * nodes * steps
  // (binomial; 5 sigma tolerance keeps this deterministic-test safe).
  const Mesh mesh = Mesh::square(16);
  const double rate = 0.2;
  const Step steps = 2000;
  BernoulliSource source(mesh, spec_of(TrafficPattern::UniformRandom, rate, 7));
  const Workload w = materialize_traffic(source, 1, steps);
  const double trials = static_cast<double>(mesh.num_nodes()) * steps;
  const double expected = rate * trials;
  const double sigma = std::sqrt(trials * rate * (1 - rate));
  EXPECT_NEAR(static_cast<double>(w.size()), expected, 5 * sigma);
  EXPECT_EQ(source.offered(), static_cast<std::int64_t>(w.size()));
}

TEST(TrafficSource, DestinationLaws) {
  const Mesh mesh = Mesh(8, 6);
  Rng rng(5);
  for (NodeId u = 0; u < mesh.num_nodes(); ++u) {
    const Coord xy = mesh.coord_of(u);
    const NodeId bc = traffic_destination(
        mesh, spec_of(TrafficPattern::BitComplement, 1, 1), u, rng);
    if (xy.col == 7 - xy.col && xy.row == 5 - xy.row) {
      EXPECT_EQ(bc, kInvalidNode);
    } else {
      EXPECT_EQ(bc, mesh.id_of(7 - xy.col, 5 - xy.row));
    }
    const NodeId tor = traffic_destination(
        mesh, spec_of(TrafficPattern::Tornado, 1, 1), u, rng);
    EXPECT_EQ(tor, mesh.id_of((xy.col + 3) % 8, (xy.row + 2) % 6));
    // Uniform never picks the source itself.
    for (int trial = 0; trial < 32; ++trial) {
      const NodeId d = traffic_destination(
          mesh, spec_of(TrafficPattern::UniformRandom, 1, 1), u, rng);
      ASSERT_NE(d, u);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, mesh.num_nodes());
    }
  }
  const Mesh square = Mesh::square(6);
  for (NodeId u = 0; u < square.num_nodes(); ++u) {
    const Coord xy = square.coord_of(u);
    const NodeId tp = traffic_destination(
        square, spec_of(TrafficPattern::Transpose, 1, 1), u, rng);
    if (xy.col == xy.row) {
      EXPECT_EQ(tp, kInvalidNode);  // diagonal does not inject
    } else {
      EXPECT_EQ(tp, square.id_of(xy.row, xy.col));
    }
  }
}

TEST(TrafficSource, HotspotFraction) {
  const Mesh mesh = Mesh::square(8);
  TrafficSpec spec = spec_of(TrafficPattern::Hotspot, 1, 11);
  spec.hotspot_fraction = 0.25;
  const NodeId sink = hotspot_sink(mesh, spec);
  Rng rng(11);
  int to_sink = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    const NodeId src = static_cast<NodeId>(i % mesh.num_nodes());
    const NodeId d = traffic_destination(mesh, spec, src, rng);
    ASSERT_NE(d, src);
    if (d == sink && src != sink) ++to_sink;
  }
  // Sink hit fraction ~ 0.25 + 0.75/(n-1) background; 5 sigma band.
  const double p = 0.25 + 0.75 / (mesh.num_nodes() - 1);
  const double sigma = std::sqrt(trials * p * (1 - p));
  EXPECT_NEAR(to_sink, p * trials, 5 * sigma);
}

TEST(TrafficPump, BitIdenticalToPreScheduledBatch) {
  // The same stream pumped with a small generation-ahead window vs fully
  // pre-scheduled through add_packet: identical step counts, deliveries,
  // moves and final fingerprint.
  const Mesh mesh = Mesh::square(8);
  const Step steps = 60;
  TrafficSpec tspec = spec_of(TrafficPattern::UniformRandom, 0.15, 21);

  BernoulliSource batch_source(mesh, tspec);
  const Workload stream = materialize_traffic(batch_source, 1, steps);
  auto algo_batch = make_algorithm("bounded-dimension-order");
  Engine::Config config;
  config.queue_capacity = 2;
  Engine batch(mesh, config, *algo_batch);
  for (const Demand& d : stream)
    batch.add_packet(d.source, d.dest, d.injected_at);
  batch.prepare();
  batch.run(100000);
  ASSERT_TRUE(batch.all_delivered());

  auto algo_pumped = make_algorithm("bounded-dimension-order");
  config.stall_counts_pending_injections = true;  // open-loop policy
  Engine pumped(mesh, config, *algo_pumped);
  BernoulliSource live_source(mesh, tspec);
  TrafficPump pump(pumped, live_source, steps, /*ahead=*/4);
  pump.prime();
  pumped.prepare();
  run_to_drain(pumped, pump, 100000);
  ASSERT_TRUE(pumped.all_delivered());

  EXPECT_EQ(pump.offered(), static_cast<std::int64_t>(stream.size()));
  EXPECT_EQ(pumped.step(), batch.step());
  EXPECT_EQ(pumped.total_moves(), batch.total_moves());
  EXPECT_EQ(pumped.max_occupancy_seen(), batch.max_occupancy_seen());
  EXPECT_EQ(pumped.fingerprint(), batch.fingerprint());
}

TEST(TrafficPump, SurvivesIdleGapsAtLowRate) {
  // Rate low enough that the network repeatedly drains mid-stream: the
  // pump must fast-forward emission across the idle gaps.
  const Mesh mesh = Mesh::square(4);
  auto algo = make_algorithm("dimension-order");
  Engine::Config config;
  config.queue_capacity = 4;
  config.stall_counts_pending_injections = true;
  config.stall_limit = 4096;
  Engine e(mesh, config, *algo);
  BernoulliSource source(mesh,
                         spec_of(TrafficPattern::UniformRandom, 0.005, 3));
  TrafficPump pump(e, source, 400, /*ahead=*/2);
  pump.prime();
  e.prepare();
  run_to_drain(e, pump, 100000);
  EXPECT_TRUE(pump.exhausted());
  EXPECT_TRUE(e.all_delivered());
  EXPECT_FALSE(e.stalled());
  EXPECT_EQ(pump.offered(), static_cast<std::int64_t>(e.num_packets()));
}

TEST(ReplaySource, ReproducesMaterializedStream) {
  const Mesh mesh = Mesh::square(6);
  BernoulliSource original(mesh,
                           spec_of(TrafficPattern::UniformRandom, 0.2, 9));
  const Workload stream = materialize_traffic(original, 1, 40);
  ReplaySource replay(stream);
  const Workload again = materialize_traffic(replay, 1, 40);
  ASSERT_EQ(again.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(again[i].source, stream[i].source);
    EXPECT_EQ(again[i].dest, stream[i].dest);
    EXPECT_EQ(again[i].injected_at, stream[i].injected_at);
  }
}

TEST(SteadyState, PhaseAccountingInvariants) {
  SteadyStateSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 2;
  spec.algorithm = "bounded-dimension-order";
  spec.traffic = spec_of(TrafficPattern::UniformRandom, 0.1, 33);
  spec.warmup_steps = 64;
  spec.measure_steps = 256;
  const SteadyStateResult r = run_steady_state(spec);

  EXPECT_FALSE(r.stalled);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.backlog_end, 0);
  // Phase totals add up to the run totals.
  EXPECT_EQ(r.warmup.offered + r.measure.offered + r.drain.offered,
            r.total_offered);
  EXPECT_EQ(r.warmup.delivered + r.measure.delivered + r.drain.delivered,
            r.total_delivered);
  EXPECT_EQ(r.total_delivered, r.total_offered);
  EXPECT_EQ(r.drain.offered, 0);  // source stops at the measure boundary
  EXPECT_EQ(r.warmup.steps, 64);
  EXPECT_EQ(r.measure.steps, 256);
  EXPECT_LE(r.measured_delivered, r.measured_packets);
  // Sub-saturation: accepted tracks offered and the phase completes.
  EXPECT_GT(r.offered_rate, 0.05);
  EXPECT_NEAR(r.accepted_rate, r.offered_rate, 0.2 * r.offered_rate);
  EXPECT_GT(r.latency.mean, 0);
  EXPECT_LE(r.latency.p50, r.latency.p99);
}

TEST(SteadyState, StalledRunIsReported) {
  // Central-queue dimension order at k = 1 deadlocks under any sustained
  // load; the steady-state runner must report the stall, not spin.
  SteadyStateSpec spec;
  spec.width = spec.height = 8;
  spec.queue_capacity = 1;
  spec.algorithm = "dimension-order";
  spec.traffic = spec_of(TrafficPattern::UniformRandom, 0.3, 5);
  spec.warmup_steps = 32;
  spec.measure_steps = 128;
  spec.stall_limit = 256;
  const SteadyStateResult r = run_steady_state(spec);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.drained);
  EXPECT_GT(r.backlog_end, 0);
}

TEST(Saturation, BoundedRouterGainsWithK) {
  SaturationSpec search;
  search.base.width = search.base.height = 8;
  search.base.algorithm = "bounded-dimension-order";
  search.base.traffic = spec_of(TrafficPattern::UniformRandom, 0.1, 77);
  search.base.warmup_steps = 32;
  search.base.measure_steps = 128;
  search.resolution = 1.0 / 64.0;

  search.base.queue_capacity = 1;
  const SaturationResult k1 = find_saturation_rate(search);
  search.base.queue_capacity = 4;
  const SaturationResult k4 = find_saturation_rate(search);

  EXPECT_GT(k1.saturation_rate, 0.0);  // deadlock-free even at k = 1
  EXPECT_GE(k4.saturation_rate, k1.saturation_rate);
  EXPECT_GT(k1.first_unsustainable, k1.saturation_rate);
  for (const SaturationProbe& p : k1.probes)
    EXPECT_EQ(p.sustainable,
              p.rate <= k1.saturation_rate);  // bisection consistency
}

}  // namespace
}  // namespace mr
