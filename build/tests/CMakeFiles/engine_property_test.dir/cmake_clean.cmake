file(REMOVE_RECURSE
  "CMakeFiles/engine_property_test.dir/engine_property_test.cpp.o"
  "CMakeFiles/engine_property_test.dir/engine_property_test.cpp.o.d"
  "engine_property_test"
  "engine_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
