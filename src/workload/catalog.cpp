#include "workload/catalog.hpp"

namespace mr {

const std::vector<WorkloadInfo>& workload_catalog() {
  static const std::vector<WorkloadInfo> catalog = {
      {"random-permutation", "batch", "seed",
       "uniform random full permutation (every node sends and receives one)"},
      {"partial-permutation", "batch", "fraction, seed",
       "random partial permutation with the given sending fraction"},
      {"transpose", "batch", "",
       "(c, r) -> (r, c) on a square mesh"},
      {"bit-reversal", "batch", "",
       "coordinate bit-reversal (square, power-of-two side)"},
      {"rotation", "batch", "dc, dr",
       "rotation by (dc, dr) with wrap-around"},
      {"mirror", "batch", "",
       "west half <-> mirrored east half; heavy bisection load"},
      {"random-hh", "batch", "h, seed",
       "h-h relation: every node sends and receives exactly h packets"},
      {"row-to-column", "batch", "row, col",
       "one row floods one column; all packets turn at a single node"},
      {"corner-flood", "batch", "w, h",
       "origin corner block into the mirrored far-corner block"},
      {"hotspot", "batch", "sink, count",
       "count packets converging on one sink node"},
      {"diagonal-shift", "batch", "s",
       "full permutation (c, r) -> ((c+s) mod n, (r+s) mod n)"},
      {"half-transpose", "batch", "",
       "transpose below the diagonal only; monotone, deadlock-free"},
      {"lk-uniform", "batch", "l, k, seed",
       "(l,k)-routing, degree-balanced: min(l,k) sends/node, receives <= k"},
      {"lk-clustered", "batch", "l, k, seed",
       "(l,k)-routing between opposite corner blocks, lopsided degrees"},
      {"lk-worst-case", "batch", "l, k",
       "(l,k) bisection flood: west half to east mirror, min(l,k) copies"},
      {"uniform", "open-loop", "rate, seed",
       "destination uniform over all other terminals"},
      {"transpose", "open-loop", "rate",
       "terminal-space transpose; diagonal terminals idle"},
      {"bitcomp", "open-loop", "rate",
       "bit-complement (c, r) -> (W-1-c, H-1-r)"},
      {"tornado", "open-loop", "rate",
       "half-width rotation in both dimensions"},
      {"hotspot", "open-loop", "rate, fraction, sink, seed",
       "uniform stream with a probability mass on one sink terminal"},
  };
  return catalog;
}

bool known_workload(const std::string& name) {
  for (const WorkloadInfo& info : workload_catalog())
    if (info.name == name) return true;
  return false;
}

}  // namespace mr
