// Saturation-throughput search: the highest per-node injection rate a
// (mesh, k, algorithm, pattern) combination sustains in steady state.
//
// A rate is "sustainable" when the steady-state run neither stalls nor
// leaves the measurement phase unfinished, and accepted throughput keeps
// up with offered load (accepted >= sustain_fraction * offered). The
// search brackets the saturation point by doubling, then bisects to the
// requested resolution. Each probe re-seeds the traffic source from the
// same spec seed, so the whole search is deterministic.
#pragma once

#include <stdexcept>
#include <vector>

#include "traffic/steady_state.hpp"

namespace mr {

/// Thrown by find_saturation_rate when the probe template carries a
/// non-stationary burst process: the search's sustainability predicate
/// compares accepted throughput against TrafficSpec::rate as the long-run
/// offered load, which only holds for the stationary Bernoulli source.
/// Callers who want a bursty load curve should sweep run_steady_state
/// directly and read offered_rate from each result instead.
class NonStationaryTrafficError : public std::invalid_argument {
 public:
  explicit NonStationaryTrafficError(const std::string& what_arg)
      : std::invalid_argument(what_arg) {}
};

struct SaturationSpec {
  /// Template for each probe; base.traffic.rate is overwritten per probe.
  SteadyStateSpec base;
  double min_rate = 1.0 / 512.0;  ///< search floor (also first probe)
  double max_rate = 1.0;          ///< search ceiling
  double resolution = 1.0 / 256.0;  ///< bisection terminates at this width
  /// Accepted/offered ratio a sustainable probe must reach.
  double sustain_fraction = 0.95;
};

struct SaturationProbe {
  double rate = 0;
  bool sustainable = false;
  SteadyStateResult result;
};

struct SaturationResult {
  /// Highest probed rate that was sustainable (0 when even min_rate was
  /// not) and lowest probed rate that was not (max_rate when all were).
  double saturation_rate = 0;
  double first_unsustainable = 0;
  std::vector<SaturationProbe> probes;  ///< in probe order
};

/// True when `r` counts as sustaining its offered load under `spec`.
bool sustained(const SaturationSpec& spec, const SteadyStateResult& r);

/// Throws NonStationaryTrafficError when spec.base.burst is not
/// stationary (see above).
SaturationResult find_saturation_rate(const SaturationSpec& spec);

}  // namespace mr
