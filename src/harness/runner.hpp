// Run driver: executes one routing instance (mesh + workload + algorithm)
// and collects the result metrics used by tests and benchmarks.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/types.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "topo/mesh.hpp"
#include "workload/permutation.hpp"

namespace mr {

struct RunSpec {
  std::int32_t width = 0;
  std::int32_t height = 0;
  bool torus = false;
  int queue_capacity = 1;  ///< k
  std::string algorithm;   ///< registry name
  Step max_steps = 0;      ///< 0 = auto (generous bound from mesh size)
  Step stall_limit = 500000;
};

struct RunResult {
  Step steps = 0;              ///< last executed step
  bool all_delivered = false;
  bool stalled = false;
  std::size_t packets = 0;
  std::size_t delivered = 0;
  int max_queue = 0;           ///< peak single-queue occupancy
  std::int64_t total_moves = 0;
  Step latency_p50 = 0;
  Step latency_max = 0;
};

/// Runs the workload to completion (or to max_steps / stall).
RunResult run_workload(const RunSpec& spec, const Workload& workload);

/// Convenience: default max step budget for an n×m mesh with queue size k —
/// comfortably above the Theorem 15 upper bound.
Step default_step_budget(std::int32_t width, std::int32_t height, int k);

}  // namespace mr
