file(REMOVE_RECURSE
  "libmr_workload.a"
)
